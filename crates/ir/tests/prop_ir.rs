//! Property-based tests over the IR core: generated random programs
//! must verify, terminate, and behave deterministically; structural
//! analyses must uphold their invariants.
//!
//! Driven by the in-repo harness (`casted_util::prop`) — each case
//! draws its inputs from a deterministic per-case RNG, so the whole
//! file is bit-reproducible with no registry dependencies.

use casted_ir::testgen::{random_module, GenOptions};
use casted_ir::{dfg::BlockDfg, interp, liveness::Liveness, LatencyConfig};
use casted_util::prop::run_cases;
use casted_util::{prop_assert, prop_assert_eq};

fn opts() -> GenOptions {
    GenOptions {
        body_ops: 30,
        iterations: 5,
        globals: 2,
        with_float: true,
        diamonds: 2,
        inner_loops: 1,
        lib_calls: 1,
    }
}

#[test]
fn generated_programs_verify_and_halt() {
    run_cases("generated_programs_verify_and_halt", 48, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        prop_assert!(casted_ir::verify::verify_module(&m).is_ok());
        let r = interp::run(&m, 2_000_000).unwrap();
        prop_assert_eq!(r.stop, interp::StopReason::Halt(0));
        Ok(())
    });
}

#[test]
fn interpreter_is_deterministic() {
    run_cases("interpreter_is_deterministic", 48, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let a = interp::run(&m, 2_000_000).unwrap();
        let b = interp::run(&m, 2_000_000).unwrap();
        prop_assert_eq!(a.stream.len(), b.stream.len());
        for (x, y) in a.stream.iter().zip(&b.stream) {
            prop_assert!(x.bit_eq(y));
        }
        prop_assert_eq!(a.dyn_insns, b.dyn_insns);
        Ok(())
    });
}

#[test]
fn dfg_edges_are_forward_and_heights_monotone() {
    run_cases("dfg_edges_are_forward_and_heights_monotone", 48, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let f = m.entry_fn();
        let lat = LatencyConfig::default();
        for (bid, _) in f.iter_blocks() {
            let dfg = BlockDfg::build(f, bid, &lat);
            for (i, es) in dfg.succs.iter().enumerate() {
                for e in es {
                    prop_assert!(e.to > i, "edge must be forward");
                    // Height of a node is at least weight + height of succ.
                    prop_assert!(dfg.height[i] >= e.weight + dfg.height[e.to]);
                }
            }
        }
        Ok(())
    });
}

#[test]
fn liveness_no_dead_values_at_exit() {
    run_cases("liveness_no_dead_values_at_exit", 48, |rng| {
        let m = random_module(rng.next_u64(), &opts());
        let f = m.entry_fn();
        let live = Liveness::analyze(f);
        // A block ending in halt has empty live-out.
        for (bid, block) in f.iter_blocks() {
            let last = *block.insns.last().unwrap();
            if f.insn(last).op == casted_ir::Opcode::Halt {
                prop_assert!(live.live_out[bid.index()].is_empty());
            }
            // Every live-in register of a reachable block is of a
            // valid allocated index.
            for r in &live.live_in[bid.index()] {
                prop_assert!(r.index < f.reg_count(r.class));
            }
        }
        Ok(())
    });
}

#[test]
fn bit_flip_is_an_involution() {
    run_cases("bit_flip_is_an_involution", 64, |rng| {
        use casted_ir::semantics::Val;
        let v = rng.next_u64() as i64;
        let bit = rng.gen_range(0u32..64);
        let x = Val::I(v);
        prop_assert_eq!(x.flip_bit(bit).flip_bit(bit), x);
        let f = Val::F(f64::from_bits(v as u64));
        let back = f.flip_bit(bit).flip_bit(bit);
        match (f, back) {
            (Val::F(a), Val::F(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
            _ => prop_assert!(false),
        }
        Ok(())
    });
}

#[test]
fn eval_pure_never_panics_on_int_ops() {
    run_cases("eval_pure_never_panics_on_int_ops", 64, |rng| {
        use casted_ir::semantics::{eval_pure, Val};
        use casted_ir::Opcode::*;
        let a = rng.next_u64() as i64;
        // Mix fully random values with small ones so edge divisors
        // (0, ±1) actually occur.
        let b = if rng.gen_bool(0.3) {
            rng.gen_range(-2i64..=2)
        } else {
            rng.next_u64() as i64
        };
        for op in [Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sra] {
            let _ = eval_pure(op, &[Val::I(a), Val::I(b)]).unwrap();
        }
        // Division is total except for zero.
        let r = eval_pure(Div, &[Val::I(a), Val::I(b)]);
        prop_assert_eq!(r.is_err(), b == 0);
        Ok(())
    });
}

#[test]
fn memory_roundtrips() {
    run_cases("memory_roundtrips", 64, |rng| {
        let addr_word = rng.gen_range(512usize..1000);
        let v = rng.next_u64() as i64;
        let m = casted_ir::Module::new("t");
        let mut mem = interp::Memory::for_module(&m);
        // Memory::for_module gives HEAP_SLACK past data_end (=4096).
        let addr = (addr_word * 8) as i64;
        if addr_word < mem.len_words() {
            mem.store_int(addr, v).unwrap();
            prop_assert_eq!(mem.load_int(addr).unwrap(), v);
            let f = f64::from_bits(v as u64);
            mem.store_float(addr, f).unwrap();
            prop_assert_eq!(mem.load_float(addr).unwrap().to_bits(), f.to_bits());
        }
        Ok(())
    });
}
