//! MiniC recursive-descent parser.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use crate::Diag;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, Diag>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn line(&self) -> u32 {
        self.peek().line
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek().kind == kind
    }

    fn bump(&mut self) -> &Token {
        let t = &self.toks[self.pos];
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind.clone()) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> PResult<Token> {
        if self.at(kind.clone()) {
            Ok(self.bump().clone())
        } else {
            Err(Diag::new(
                self.line(),
                format!("expected {what}, found {:?}", self.peek().kind),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        let t = self.expect(TokenKind::Ident, what)?;
        Ok(t.text)
    }

    fn scalar_ty(&mut self) -> PResult<Ty> {
        if self.eat(TokenKind::KwInt) {
            Ok(Ty::Int)
        } else if self.eat(TokenKind::KwFloat) {
            Ok(Ty::Float)
        } else {
            Err(Diag::new(self.line(), "expected type `int` or `float`"))
        }
    }

    // ---------------- expressions ----------------

    fn primary(&mut self) -> PResult<Expr> {
        let line = self.line();
        let kind = match self.peek().kind.clone() {
            TokenKind::Int => {
                let v = self.bump().int_val;
                ExprKind::IntLit(v)
            }
            TokenKind::Float => {
                let v = self.bump().float_val;
                ExprKind::FloatLit(v)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                return Ok(e);
            }
            // `int(e)` / `float(e)` casts.
            TokenKind::KwInt => {
                self.bump();
                self.expect(TokenKind::LParen, "`(` after `int`")?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                ExprKind::CastInt(Box::new(e))
            }
            TokenKind::KwFloat => {
                self.bump();
                self.expect(TokenKind::LParen, "`(` after `float`")?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                ExprKind::CastFloat(Box::new(e))
            }
            TokenKind::Ident => {
                let name = self.bump().text.clone();
                if self.eat(TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen, "`)` after arguments")?;
                    ExprKind::Call(name, args)
                } else if self.eat(TokenKind::LBracket) {
                    let idx = self.expr()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    ExprKind::Index(name, Box::new(idx))
                } else {
                    ExprKind::Name(name)
                }
            }
            other => {
                return Err(Diag::new(
                    line,
                    format!("expected expression, found {other:?}"),
                ))
            }
        };
        Ok(Expr { kind, line })
    }

    fn unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        if self.eat(TokenKind::Minus) {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
                line,
            });
        }
        if self.eat(TokenKind::Not) {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnOp::Not, Box::new(e)),
                line,
            });
        }
        self.primary()
    }

    /// Binding power of a binary operator token (higher binds tighter),
    /// Rust-style: `||` < `&&` < comparisons < `|` < `^` < `&` <
    /// shifts < add < mul.
    fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
        Some(match kind {
            TokenKind::OrOr => (BinOp::LOr, 1),
            TokenKind::AndAnd => (BinOp::LAnd, 2),
            TokenKind::EqEq => (BinOp::Eq, 3),
            TokenKind::NotEq => (BinOp::Ne, 3),
            TokenKind::Lt => (BinOp::Lt, 3),
            TokenKind::Le => (BinOp::Le, 3),
            TokenKind::Gt => (BinOp::Gt, 3),
            TokenKind::Ge => (BinOp::Ge, 3),
            TokenKind::Pipe => (BinOp::Or, 4),
            TokenKind::Caret => (BinOp::Xor, 5),
            TokenKind::Amp => (BinOp::And, 6),
            TokenKind::Shl => (BinOp::Shl, 7),
            TokenKind::Shr => (BinOp::Shr, 7),
            TokenKind::Plus => (BinOp::Add, 8),
            TokenKind::Minus => (BinOp::Sub, 8),
            TokenKind::Star => (BinOp::Mul, 9),
            TokenKind::Slash => (BinOp::Div, 9),
            TokenKind::Percent => (BinOp::Rem, 9),
            _ => return None,
        })
    }

    fn bin_expr(&mut self, min_bp: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = Self::binop_of(&self.peek().kind) {
            if bp < min_bp {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.bin_expr(bp + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn expr(&mut self) -> PResult<Expr> {
        self.bin_expr(0)
    }

    // ---------------- statements ----------------

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.at(TokenKind::RBrace) {
            if self.at(TokenKind::Eof) {
                return Err(Diag::new(self.line(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek().kind.clone() {
            TokenKind::KwVar => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(TokenKind::Colon, "`:`")?;
                if self.eat(TokenKind::LBracket) {
                    let ty = self.scalar_ty()?;
                    self.expect(TokenKind::Semi, "`;` in array type")?;
                    let len = self.expr()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    self.expect(TokenKind::Semi, "`;` after declaration")?;
                    Ok(Stmt::VarArray { name, ty, len, line })
                } else {
                    let ty = self.scalar_ty()?;
                    self.expect(TokenKind::Assign, "`=` (locals must be initialized)")?;
                    let init = self.expr()?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Var { name, ty, init, line })
                }
            }
            TokenKind::KwIf => {
                self.bump();
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if self.eat(TokenKind::KwElse) {
                    if self.at(TokenKind::KwIf) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::KwFor => {
                self.bump();
                let name = self.ident("loop variable")?;
                self.expect(TokenKind::KwIn, "`in`")?;
                let lo = self.expr()?;
                self.expect(TokenKind::DotDot, "`..`")?;
                let hi = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For { name, lo, hi, body })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Break(line))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Continue(line))
            }
            TokenKind::KwReturn => {
                self.bump();
                if self.eat(TokenKind::Semi) {
                    Ok(Stmt::Return(None, line))
                } else {
                    let e = self.expr()?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Return(Some(e), line))
                }
            }
            TokenKind::Ident => {
                let name = self.peek().text.clone();
                // out()/fout() builtins.
                if (name == "out" || name == "fout") && self.peek2().kind == TokenKind::LParen {
                    self.bump();
                    self.bump();
                    let e = self.expr()?;
                    self.expect(TokenKind::RParen, "`)`")?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    return Ok(if name == "out" {
                        Stmt::Out(e)
                    } else {
                        Stmt::FOut(e)
                    });
                }
                match self.peek2().kind {
                    TokenKind::Assign => {
                        self.bump();
                        self.bump();
                        let value = self.expr()?;
                        self.expect(TokenKind::Semi, "`;`")?;
                        Ok(Stmt::Assign { name, value, line })
                    }
                    TokenKind::LBracket => {
                        // Could be `a[i] = e;` or an expression statement
                        // starting with an index — only assignment is
                        // useful, so commit to assignment.
                        self.bump();
                        self.bump();
                        let index = self.expr()?;
                        self.expect(TokenKind::RBracket, "`]`")?;
                        self.expect(TokenKind::Assign, "`=`")?;
                        let value = self.expr()?;
                        self.expect(TokenKind::Semi, "`;`")?;
                        Ok(Stmt::AssignIndex {
                            name,
                            index,
                            value,
                            line,
                        })
                    }
                    _ => {
                        let e = self.expr()?;
                        self.expect(TokenKind::Semi, "`;`")?;
                        Ok(Stmt::ExprStmt(e))
                    }
                }
            }
            other => Err(Diag::new(line, format!("expected statement, found {other:?}"))),
        }
    }

    // ---------------- top level ----------------

    fn global_def(&mut self) -> PResult<GlobalDef> {
        let line = self.line();
        self.expect(TokenKind::KwGlobal, "`global`")?;
        let name = self.ident("global name")?;
        self.expect(TokenKind::Colon, "`:`")?;
        let (ty, len, is_array) = if self.eat(TokenKind::LBracket) {
            let ty = self.scalar_ty()?;
            self.expect(TokenKind::Semi, "`;` in array type")?;
            let len = self.expr()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            (ty, len, true)
        } else {
            let ty = self.scalar_ty()?;
            (
                ty,
                Expr {
                    kind: ExprKind::IntLit(1),
                    line,
                },
                false,
            )
        };
        let mut init = Vec::new();
        if self.eat(TokenKind::Assign) {
            if is_array {
                self.expect(TokenKind::LBracket, "`[` starting initializer")?;
                if !self.at(TokenKind::RBracket) {
                    loop {
                        init.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket, "`]` ending initializer")?;
            } else {
                init.push(self.expr()?);
            }
        }
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(GlobalDef {
            name,
            ty,
            len,
            is_array,
            init,
            line,
        })
    }

    fn const_def(&mut self) -> PResult<ConstDef> {
        let line = self.line();
        self.expect(TokenKind::KwConst, "`const`")?;
        let name = self.ident("const name")?;
        self.expect(TokenKind::Colon, "`:`")?;
        let ty = self.scalar_ty()?;
        self.expect(TokenKind::Assign, "`=`")?;
        let value = self.expr()?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(ConstDef {
            name,
            ty,
            value,
            line,
        })
    }

    fn fn_def(&mut self, is_lib: bool) -> PResult<FnDef> {
        let line = self.line();
        self.expect(TokenKind::KwFn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                let pname = self.ident("parameter name")?;
                self.expect(TokenKind::Colon, "`:`")?;
                let ty = self.scalar_ty()?;
                params.push(Param { name: pname, ty });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let ret = if self.eat(TokenKind::Arrow) {
            Some(self.scalar_ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            ret,
            body,
            is_lib,
            line,
        })
    }

    fn program(&mut self) -> Result<Program, Vec<Diag>> {
        let mut prog = Program::default();
        let mut errs = Vec::new();
        loop {
            match self.peek().kind.clone() {
                TokenKind::Eof => break,
                TokenKind::KwGlobal => match self.global_def() {
                    Ok(g) => prog.globals.push(g),
                    Err(e) => {
                        errs.push(e);
                        self.recover();
                    }
                },
                TokenKind::KwConst => match self.const_def() {
                    Ok(c) => prog.consts.push(c),
                    Err(e) => {
                        errs.push(e);
                        self.recover();
                    }
                },
                TokenKind::KwLib => {
                    self.bump();
                    match self.fn_def(true) {
                        Ok(f) => prog.functions.push(f),
                        Err(e) => {
                            errs.push(e);
                            self.recover();
                        }
                    }
                }
                TokenKind::KwFn => match self.fn_def(false) {
                    Ok(f) => prog.functions.push(f),
                    Err(e) => {
                        errs.push(e);
                        self.recover();
                    }
                },
                other => {
                    errs.push(Diag::new(
                        self.line(),
                        format!("expected top-level item, found {other:?}"),
                    ));
                    self.recover();
                }
            }
        }
        if errs.is_empty() {
            Ok(prog)
        } else {
            Err(errs)
        }
    }

    /// Error recovery: skip to the next plausible top-level start.
    fn recover(&mut self) {
        loop {
            match self.peek().kind {
                TokenKind::Eof
                | TokenKind::KwGlobal
                | TokenKind::KwConst
                | TokenKind::KwFn
                | TokenKind::KwLib => break,
                _ => {
                    self.bump();
                }
            }
        }
    }
}

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, Vec<Diag>> {
    Parser {
        toks: tokens,
        pos: 0,
    }
    .program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_functions_and_globals() {
        let p = parse_src(
            "global g: [int; 8];\nconst N: int = 3;\nfn main() -> int { return 0; }\nlib fn l(x: int) -> int { return x; }",
        );
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.functions.len(), 2);
        assert!(p.function("l").unwrap().is_lib);
        assert!(!p.function("main").unwrap().is_lib);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("fn main() -> int { return 1 + 2 * 3; }");
        let body = &p.functions[0].body;
        match &body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Bin(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            _ => panic!("expected return"),
        }
    }

    #[test]
    fn comparison_below_bitwise() {
        // `a & 1 == 0` parses as `a & (1 == 0)`? No — Rust-style:
        // comparisons bind *looser* than `&`, so it is `(a & 1) == 0`...
        // our table gives cmp bp 3 < `&` bp 6, so `&` binds tighter.
        let p = parse_src("fn main() -> int { if a & 1 == 0 { return 1; } return 0; }");
        match &p.functions[0].body[0] {
            Stmt::If { cond, .. } => {
                assert!(matches!(cond.kind, ExprKind::Bin(BinOp::Eq, _, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_src(
            "fn main() { var x: int = 0; while x < 10 { x = x + 1; if x == 5 { break; } else { continue; } } for i in 0..4 { out(i); } }",
        );
        assert_eq!(p.functions[0].body.len(), 3);
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_src(
            "fn main() { if a == 1 { out(1); } else if a == 2 { out(2); } else { out(3); } }",
        );
        match &p.functions[0].body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_casts_and_calls() {
        let p = parse_src("fn main() { var x: float = float(3); var y: int = int(x) + f(1, 2); }");
        assert_eq!(p.functions[0].body.len(), 2);
    }

    #[test]
    fn parses_array_initializer() {
        let p = parse_src("global q: [int; 4] = [1, 2, 3, 4];");
        assert_eq!(p.globals[0].init.len(), 4);
    }

    #[test]
    fn reports_error_with_line() {
        let errs = parse(&lex("fn main() {\n  var = 3;\n}").unwrap()).unwrap_err();
        assert_eq!(errs[0].line, 2);
    }

    #[test]
    fn recovers_to_next_function() {
        let errs = parse(&lex("fn broken( { }\nfn ok() { return; }").unwrap()).unwrap_err();
        assert_eq!(errs.len(), 1); // only one error reported, second fn fine
    }
}
