//! MiniC lexer.

use crate::Diag;

/// Kinds of MiniC tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword text is kept in [`Token::text`].
    Ident,
    /// Integer literal (value in [`Token::int_val`]).
    Int,
    /// Float literal (value in [`Token::float_val`]).
    Float,
    // Keywords.
    KwFn,
    KwLib,
    KwGlobal,
    KwConst,
    KwVar,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwIn,
    KwBreak,
    KwContinue,
    KwReturn,
    KwInt,
    KwFloat,
    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    DotDot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Not,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input sentinel.
    Eof,
}

/// A lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// Source text for identifiers/keywords.
    pub text: String,
    /// Value for integer literals.
    pub int_val: i64,
    /// Value for float literals.
    pub float_val: f64,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    fn simple(kind: TokenKind, line: u32) -> Self {
        Token {
            kind,
            text: String::new(),
            int_val: 0,
            float_val: 0.0,
            line,
        }
    }
}

fn keyword(text: &str) -> Option<TokenKind> {
    Some(match text {
        "fn" => TokenKind::KwFn,
        "lib" => TokenKind::KwLib,
        "global" => TokenKind::KwGlobal,
        "const" => TokenKind::KwConst,
        "var" => TokenKind::KwVar,
        "if" => TokenKind::KwIf,
        "else" => TokenKind::KwElse,
        "while" => TokenKind::KwWhile,
        "for" => TokenKind::KwFor,
        "in" => TokenKind::KwIn,
        "break" => TokenKind::KwBreak,
        "continue" => TokenKind::KwContinue,
        "return" => TokenKind::KwReturn,
        "int" => TokenKind::KwInt,
        "float" => TokenKind::KwFloat,
        _ => return None,
    })
}

/// Lex MiniC source into tokens (always terminated by an `Eof` token).
pub fn lex(source: &str) -> Result<Vec<Token>, Vec<Diag>> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut errs = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &source[start..i];
                match keyword(text) {
                    Some(kind) => toks.push(Token::simple(kind, line)),
                    None => toks.push(Token {
                        kind: TokenKind::Ident,
                        text: text.to_string(),
                        int_val: 0,
                        float_val: 0.0,
                        line,
                    }),
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // A float literal needs `digit . digit`; `0..N` must lex
                // as Int DotDot Ident.
                let is_float = i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    // Optional exponent.
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            i = j;
                            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    match source[start..i].parse::<f64>() {
                        Ok(v) => toks.push(Token {
                            kind: TokenKind::Float,
                            text: String::new(),
                            int_val: 0,
                            float_val: v,
                            line,
                        }),
                        Err(_) => errs.push(Diag::new(line, "malformed float literal")),
                    }
                } else {
                    match source[start..i].parse::<i64>() {
                        Ok(v) => toks.push(Token {
                            kind: TokenKind::Int,
                            text: String::new(),
                            int_val: v,
                            float_val: 0.0,
                            line,
                        }),
                        Err(_) => errs.push(Diag::new(line, "integer literal out of range")),
                    }
                }
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &source[i..i + 2]
                } else {
                    ""
                };
                let (kind, len) = match two {
                    "->" => (Some(TokenKind::Arrow), 2),
                    ".." => (Some(TokenKind::DotDot), 2),
                    "<<" => (Some(TokenKind::Shl), 2),
                    ">>" => (Some(TokenKind::Shr), 2),
                    "&&" => (Some(TokenKind::AndAnd), 2),
                    "||" => (Some(TokenKind::OrOr), 2),
                    "==" => (Some(TokenKind::EqEq), 2),
                    "!=" => (Some(TokenKind::NotEq), 2),
                    "<=" => (Some(TokenKind::Le), 2),
                    ">=" => (Some(TokenKind::Ge), 2),
                    _ => {
                        let k = match c {
                            '(' => Some(TokenKind::LParen),
                            ')' => Some(TokenKind::RParen),
                            '{' => Some(TokenKind::LBrace),
                            '}' => Some(TokenKind::RBrace),
                            '[' => Some(TokenKind::LBracket),
                            ']' => Some(TokenKind::RBracket),
                            ',' => Some(TokenKind::Comma),
                            ';' => Some(TokenKind::Semi),
                            ':' => Some(TokenKind::Colon),
                            '=' => Some(TokenKind::Assign),
                            '+' => Some(TokenKind::Plus),
                            '-' => Some(TokenKind::Minus),
                            '*' => Some(TokenKind::Star),
                            '/' => Some(TokenKind::Slash),
                            '%' => Some(TokenKind::Percent),
                            '&' => Some(TokenKind::Amp),
                            '|' => Some(TokenKind::Pipe),
                            '^' => Some(TokenKind::Caret),
                            '!' => Some(TokenKind::Not),
                            '<' => Some(TokenKind::Lt),
                            '>' => Some(TokenKind::Gt),
                            _ => None,
                        };
                        (k, 1)
                    }
                };
                match kind {
                    Some(k) => {
                        toks.push(Token::simple(k, line));
                        i += len;
                    }
                    None => {
                        errs.push(Diag::new(line, format!("unexpected character '{c}'")));
                        i += 1;
                    }
                }
            }
        }
    }
    toks.push(Token::simple(TokenKind::Eof, line));
    if errs.is_empty() {
        Ok(toks)
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fn main lib"),
            vec![
                TokenKind::KwFn,
                TokenKind::Ident,
                TokenKind::KwLib,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        assert_eq!(
            kinds("0..10"),
            vec![TokenKind::Int, TokenKind::DotDot, TokenKind::Int, TokenKind::Eof]
        );
    }

    #[test]
    fn float_literals() {
        let t = lex("3.25 1.0e3").unwrap();
        assert_eq!(t[0].kind, TokenKind::Float);
        assert_eq!(t[0].float_val, 3.25);
        assert_eq!(t[1].float_val, 1000.0);
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let t = lex("a // comment\nb").unwrap();
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= == != << >> && || ->"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let errs = lex("a $ b").unwrap_err();
        assert!(errs[0].msg.contains("unexpected character"));
    }

    #[test]
    fn big_integer_literal_error() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
