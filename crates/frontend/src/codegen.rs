//! MiniC → IR code generation with full inlining.
//!
//! Every call is expanded at its call site (sema guarantees the call
//! graph is acyclic), so the produced module has a single executable
//! entry function — the unit the CASTED passes transform. Functions
//! declared `lib fn` are inlined with
//! [`Provenance::LibraryCode`] stamped on their instructions, modelling
//! binary system libraries that the error-detection pass cannot
//! protect.

use std::collections::HashMap;

use casted_ir::func::GlobalClass;
use casted_ir::{
    CmpKind, FunctionBuilder, Module, Opcode, Operand, Provenance, Reg, RegClass,
};

use crate::ast::*;
use crate::sema::{const_eval, ConstTable, ConstVal};
use crate::Diag;

/// What a name is bound to during code generation.
#[derive(Clone, Debug)]
enum Slot {
    /// Scalar local in a virtual register.
    Scalar(Reg, Ty),
    /// Array in static storage at `addr`.
    Array(i64, Ty),
}

/// Loop context for break/continue.
struct LoopCtx {
    /// Branch target of `continue` (loop head or step block).
    continue_to: casted_ir::BlockId,
    /// Branch target of `break`.
    break_to: casted_ir::BlockId,
}

/// Per-inline-instance return context.
struct RetCtx {
    ret_reg: Option<Reg>,
    join: casted_ir::BlockId,
}

struct Cg<'a> {
    prog: &'a Program,
    consts: ConstTable,
    module: Module,
    globals: HashMap<String, (i64, Ty)>,
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Slot>>,
    loops: Vec<LoopCtx>,
    rets: Vec<RetCtx>,
    inline_depth: usize,
    instance: u32,
    errs: Vec<Diag>,
}

type CgResult<T> = Result<T, ()>;

impl<'a> Cg<'a> {
    fn err(&mut self, line: u32, msg: impl Into<String>) {
        self.errs.push(Diag::new(line, msg));
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        for s in self.scopes.iter().rev() {
            if let Some(slot) = s.get(name) {
                return Some(slot.clone());
            }
        }
        None
    }

    fn class_of(ty: Ty) -> RegClass {
        match ty {
            Ty::Int => RegClass::Gp,
            Ty::Float => RegClass::Fp,
            Ty::Bool => RegClass::Pr,
        }
    }

    /// Copy `src` operand into `dst` register (class-appropriate move).
    fn mov_to(&mut self, dst: Reg, src: Operand) {
        let op = match dst.class {
            RegClass::Gp => Opcode::MovI,
            RegClass::Fp => Opcode::FMovI,
            RegClass::Pr => unreachable!("bool values are never stored"),
        };
        self.b.push(op, vec![dst], vec![src]);
    }

    /// Evaluate an expression to an operand, using immediates for
    /// constants (like a real back-end's immediate operand forms).
    fn gen_operand(&mut self, e: &Expr) -> CgResult<(Operand, Ty)> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((Operand::Imm(*v), Ty::Int)),
            ExprKind::FloatLit(v) => Ok((Operand::FImm(*v), Ty::Float)),
            ExprKind::Name(n) => {
                if let Some(v) = self.consts.get(n).copied() {
                    return Ok(match v {
                        ConstVal::Int(i) => (Operand::Imm(i), Ty::Int),
                        ConstVal::Float(f) => (Operand::FImm(f), Ty::Float),
                    });
                }
                match self.lookup(n) {
                    Some(Slot::Scalar(r, ty)) => Ok((Operand::Reg(r), ty)),
                    Some(Slot::Array(..)) => {
                        self.err(e.line, format!("array `{n}` used as scalar"));
                        Err(())
                    }
                    None => {
                        if let Some(&(addr, ty)) = self.globals.get(n.as_str()) {
                            // Scalar global read.
                            let base = self.b.imm(addr);
                            let v = if ty == Ty::Float {
                                self.b.fload(base, 0)
                            } else {
                                self.b.load(base, 0)
                            };
                            Ok((Operand::Reg(v), ty))
                        } else {
                            self.err(e.line, format!("undefined name `{n}`"));
                            Err(())
                        }
                    }
                }
            }
            _ => {
                let (r, ty) = self.gen_expr(e)?;
                Ok((Operand::Reg(r), ty))
            }
        }
    }

    /// Compute `(base_reg, byte_offset)` addressing `name[index]`.
    fn gen_elem_addr(&mut self, line: u32, name: &str, index: &Expr) -> CgResult<(Reg, i64, Ty)> {
        let (addr, ty) = match self.lookup(name) {
            Some(Slot::Array(a, t)) => (a, t),
            Some(Slot::Scalar(..)) => {
                self.err(line, format!("`{name}` is not an array"));
                return Err(());
            }
            None => match self.globals.get(name) {
                Some(&(a, t)) => (a, t),
                None => {
                    self.err(line, format!("undefined array `{name}`"));
                    return Err(());
                }
            },
        };
        // Constant index folds into the addressing offset.
        if let Ok(cv) = const_eval(index, &self.consts) {
            if let ConstVal::Int(i) = cv {
                let base = self.b.imm(addr);
                return Ok((base, i * 8, ty));
            }
        }
        let (idx, _) = self.gen_operand(index)?;
        let off = self.b.binop(Opcode::Shl, idx, Operand::Imm(3));
        let base = self.b.imm(addr);
        let ea = self
            .b
            .binop(Opcode::Add, Operand::Reg(base), Operand::Reg(off));
        Ok((ea, 0, ty))
    }

    /// Evaluate an expression into a fresh register.
    fn gen_expr(&mut self, e: &Expr) -> CgResult<(Reg, Ty)> {
        let line = e.line;
        match &e.kind {
            ExprKind::IntLit(v) => Ok((self.b.imm(*v), Ty::Int)),
            ExprKind::FloatLit(v) => Ok((self.b.fimm(*v), Ty::Float)),
            ExprKind::Name(_) => {
                let (op, ty) = self.gen_operand(e)?;
                match op {
                    Operand::Reg(r) => Ok((r, ty)),
                    Operand::Imm(v) => Ok((self.b.imm(v), Ty::Int)),
                    Operand::FImm(v) => Ok((self.b.fimm(v), Ty::Float)),
                }
            }
            ExprKind::Index(name, idx) => {
                let (base, off, ty) = self.gen_elem_addr(line, name, idx)?;
                let v = if ty == Ty::Float {
                    self.b.fload(base, off)
                } else {
                    self.b.load(base, off)
                };
                Ok((v, ty))
            }
            ExprKind::Bin(op, a, bx) => {
                if op.is_cmp() || op.is_logical() {
                    self.err(line, "boolean expression in value position");
                    return Err(());
                }
                let (av, ta) = self.gen_operand(a)?;
                let (bv, _) = self.gen_operand(bx)?;
                if ta == Ty::Float {
                    let opc = match op {
                        BinOp::Add => Opcode::FAdd,
                        BinOp::Sub => Opcode::FSub,
                        BinOp::Mul => Opcode::FMul,
                        BinOp::Div => Opcode::FDiv,
                        _ => {
                            self.err(line, "operator not defined on float");
                            return Err(());
                        }
                    };
                    Ok((self.b.fbinop(opc, av, bv), Ty::Float))
                } else {
                    let opc = match op {
                        BinOp::Add => Opcode::Add,
                        BinOp::Sub => Opcode::Sub,
                        BinOp::Mul => Opcode::Mul,
                        BinOp::Div => Opcode::Div,
                        BinOp::Rem => Opcode::Rem,
                        BinOp::And => Opcode::And,
                        BinOp::Or => Opcode::Or,
                        BinOp::Xor => Opcode::Xor,
                        BinOp::Shl => Opcode::Shl,
                        // MiniC ints are signed; `>>` is an arithmetic
                        // shift, like `>>` on signed C/Rust integers.
                        BinOp::Shr => Opcode::Sra,
                        _ => unreachable!(),
                    };
                    Ok((self.b.binop(opc, av, bv), Ty::Int))
                }
            }
            ExprKind::Un(UnOp::Neg, inner) => {
                let (v, ty) = self.gen_operand(inner)?;
                if ty == Ty::Float {
                    Ok((self.b.fbinop(Opcode::FSub, Operand::FImm(0.0), v), Ty::Float))
                } else {
                    Ok((self.b.binop(Opcode::Sub, Operand::Imm(0), v), Ty::Int))
                }
            }
            ExprKind::Un(UnOp::Not, _) => {
                self.err(line, "boolean expression in value position");
                Err(())
            }
            ExprKind::CastInt(inner) => {
                let (v, ty) = self.gen_operand(inner)?;
                if ty == Ty::Int {
                    match v {
                        Operand::Reg(r) => Ok((r, Ty::Int)),
                        Operand::Imm(i) => Ok((self.b.imm(i), Ty::Int)),
                        _ => Err(()),
                    }
                } else {
                    let d = self.b.new_reg(RegClass::Gp);
                    self.b.push(Opcode::F2I, vec![d], vec![v]);
                    Ok((d, Ty::Int))
                }
            }
            ExprKind::CastFloat(inner) => {
                let (v, ty) = self.gen_operand(inner)?;
                if ty == Ty::Float {
                    match v {
                        Operand::Reg(r) => Ok((r, Ty::Float)),
                        Operand::FImm(f) => Ok((self.b.fimm(f), Ty::Float)),
                        _ => Err(()),
                    }
                } else {
                    let d = self.b.new_reg(RegClass::Fp);
                    self.b.push(Opcode::I2F, vec![d], vec![v]);
                    Ok((d, Ty::Float))
                }
            }
            ExprKind::Call(name, args) => {
                let ret = self.gen_call(line, name, args)?;
                match ret {
                    Some(pair) => Ok(pair),
                    None => {
                        self.err(line, format!("void function `{name}` used as value"));
                        Err(())
                    }
                }
            }
        }
    }

    /// Inline a call; returns the return-value register for non-void
    /// callees.
    fn gen_call(&mut self, line: u32, name: &str, args: &[Expr]) -> CgResult<Option<(Reg, Ty)>> {
        let fndef = match self.prog.function(name) {
            Some(f) => f.clone(),
            None => {
                self.err(line, format!("call to undefined function `{name}`"));
                return Err(());
            }
        };
        if self.inline_depth > 64 {
            self.err(line, "inline depth exceeded (recursion?)");
            return Err(());
        }
        // Evaluate arguments in the caller's provenance, then bind them
        // to fresh parameter registers.
        let mut bound = Vec::new();
        for (p, a) in fndef.params.iter().zip(args) {
            let (v, _) = self.gen_operand(a)?;
            let r = self.b.new_reg(Self::class_of(p.ty));
            self.mov_to(r, v);
            bound.push((p.name.clone(), Slot::Scalar(r, p.ty)));
        }

        let saved_prov = self.b.prov;
        if fndef.is_lib {
            self.b.prov = Provenance::LibraryCode;
        }
        self.instance += 1;
        let inst = self.instance;

        let ret_reg = fndef.ret.map(|t| self.b.new_reg(Self::class_of(t)));
        let join = self.b.new_block(format!("{}_{}_ret", fndef.name, inst));
        self.rets.push(RetCtx { ret_reg, join });

        self.scopes.push(bound.into_iter().collect());
        self.inline_depth += 1;
        self.gen_body(&fndef.body)?;
        self.inline_depth -= 1;
        self.scopes.pop();

        // Fall-through: a non-void function reaching its end yields the
        // class default (documented MiniC semantics).
        if !self.b.is_terminated() {
            if let Some(r) = ret_reg {
                let z = if r.class == RegClass::Fp {
                    Operand::FImm(0.0)
                } else {
                    Operand::Imm(0)
                };
                self.mov_to(r, z);
            }
            self.b.br(join);
        }
        self.rets.pop();
        self.b.switch_to(join);
        self.b.prov = saved_prov;
        Ok(ret_reg.map(|r| (r, fndef.ret.unwrap())))
    }

    /// Generate a condition: evaluate `e` and branch to `t_blk` /
    /// `f_blk`. Logical operators short-circuit through fresh blocks.
    fn gen_cond(
        &mut self,
        e: &Expr,
        t_blk: casted_ir::BlockId,
        f_blk: casted_ir::BlockId,
    ) -> CgResult<()> {
        match &e.kind {
            ExprKind::Bin(op, a, b) if op.is_cmp() => {
                let kind = match op {
                    BinOp::Eq => CmpKind::Eq,
                    BinOp::Ne => CmpKind::Ne,
                    BinOp::Lt => CmpKind::Lt,
                    BinOp::Le => CmpKind::Le,
                    BinOp::Gt => CmpKind::Gt,
                    BinOp::Ge => CmpKind::Ge,
                    _ => unreachable!(),
                };
                let (av, ta) = self.gen_operand(a)?;
                let (bv, _) = self.gen_operand(b)?;
                let p = if ta == Ty::Float {
                    self.b.fcmp(kind, av, bv)
                } else {
                    self.b.cmp(kind, av, bv)
                };
                self.b.br_cond(p, t_blk, f_blk);
                Ok(())
            }
            ExprKind::Bin(BinOp::LAnd, a, b) => {
                let mid = self.b.new_block("and_rhs");
                self.gen_cond(a, mid, f_blk)?;
                self.b.switch_to(mid);
                self.gen_cond(b, t_blk, f_blk)
            }
            ExprKind::Bin(BinOp::LOr, a, b) => {
                let mid = self.b.new_block("or_rhs");
                self.gen_cond(a, t_blk, mid)?;
                self.b.switch_to(mid);
                self.gen_cond(b, t_blk, f_blk)
            }
            ExprKind::Un(UnOp::Not, inner) => self.gen_cond(inner, f_blk, t_blk),
            _ => {
                self.err(e.line, "condition must be a boolean expression");
                Err(())
            }
        }
    }

    fn gen_body(&mut self, body: &[Stmt]) -> CgResult<()> {
        self.scopes.push(HashMap::new());
        for s in body {
            if self.b.is_terminated() {
                break; // dead code after return/break/continue
            }
            self.gen_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt) -> CgResult<()> {
        match s {
            Stmt::Var { name, ty, init, line } => {
                let (v, _) = self.gen_operand(init)?;
                let r = self.b.new_reg(Self::class_of(*ty));
                self.mov_to(r, v);
                let _ = line;
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), Slot::Scalar(r, *ty));
                Ok(())
            }
            Stmt::VarArray { name, ty, len, line } => {
                let n = const_eval(len, &self.consts)
                    .and_then(|v| v.as_int(*line))
                    .map_err(|d| self.errs.push(d))?;
                self.instance += 1;
                let gname = format!("__local_{}_{}", name, self.instance);
                let class = if *ty == Ty::Float {
                    GlobalClass::Float
                } else {
                    GlobalClass::Int
                };
                let (_, addr) = self.module.add_global(gname, class, n as usize, vec![]);
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), Slot::Array(addr, *ty));
                Ok(())
            }
            Stmt::Assign { name, value, line } => {
                let (v, _) = self.gen_operand(value)?;
                match self.lookup(name) {
                    Some(Slot::Scalar(r, _)) => {
                        self.mov_to(r, v);
                        Ok(())
                    }
                    Some(Slot::Array(..)) => {
                        self.err(*line, format!("cannot assign to array `{name}`"));
                        Err(())
                    }
                    None => match self.globals.get(name.as_str()).copied() {
                        Some((addr, ty)) => {
                            let base = self.b.imm(addr);
                            if ty == Ty::Float {
                                self.b.fstore(base, 0, v);
                            } else {
                                self.b.store(base, 0, v);
                            }
                            Ok(())
                        }
                        None => {
                            self.err(*line, format!("undefined name `{name}`"));
                            Err(())
                        }
                    },
                }
            }
            Stmt::AssignIndex {
                name,
                index,
                value,
                line,
            } => {
                let (v, _) = self.gen_operand(value)?;
                let (base, off, ty) = self.gen_elem_addr(*line, name, index)?;
                if ty == Ty::Float {
                    self.b.fstore(base, off, v);
                } else {
                    self.b.store(base, off, v);
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = self.b.new_block("then");
                let f = if else_body.is_empty() {
                    None
                } else {
                    Some(self.b.new_block("else"))
                };
                let join = self.b.new_block("endif");
                self.gen_cond(cond, t, f.unwrap_or(join))?;
                self.b.switch_to(t);
                self.gen_body(then_body)?;
                if !self.b.is_terminated() {
                    self.b.br(join);
                }
                if let Some(f) = f {
                    self.b.switch_to(f);
                    self.gen_body(else_body)?;
                    if !self.b.is_terminated() {
                        self.b.br(join);
                    }
                }
                self.b.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.b.new_block("while_head");
                let bodyb = self.b.new_block("while_body");
                let exit = self.b.new_block("while_exit");
                self.b.br(head);
                self.b.switch_to(head);
                self.gen_cond(cond, bodyb, exit)?;
                self.b.switch_to(bodyb);
                self.loops.push(LoopCtx {
                    continue_to: head,
                    break_to: exit,
                });
                self.gen_body(body)?;
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(head);
                }
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::For { name, lo, hi, body } => {
                let (lov, _) = self.gen_operand(lo)?;
                let i = self.b.new_reg(RegClass::Gp);
                self.mov_to(i, lov);
                // Evaluate the bound once, before the loop.
                let (hiv, _) = self.gen_operand(hi)?;
                let hi_reg = match hiv {
                    Operand::Reg(r) => Operand::Reg(r),
                    imm => imm,
                };
                let head = self.b.new_block("for_head");
                let bodyb = self.b.new_block("for_body");
                let step = self.b.new_block("for_step");
                let exit = self.b.new_block("for_exit");
                self.b.br(head);
                self.b.switch_to(head);
                let p = self.b.cmp(CmpKind::Lt, Operand::Reg(i), hi_reg);
                self.b.br_cond(p, bodyb, exit);
                self.b.switch_to(bodyb);
                self.loops.push(LoopCtx {
                    continue_to: step,
                    break_to: exit,
                });
                self.scopes.push(HashMap::new());
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), Slot::Scalar(i, Ty::Int));
                self.gen_body(body)?;
                self.scopes.pop();
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(step);
                }
                self.b.switch_to(step);
                let next = self.b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
                self.mov_to(i, Operand::Reg(next));
                self.b.br(head);
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::Break(line) => match self.loops.last() {
                Some(l) => {
                    let t = l.break_to;
                    self.b.br(t);
                    Ok(())
                }
                None => {
                    self.err(*line, "break outside loop");
                    Err(())
                }
            },
            Stmt::Continue(line) => match self.loops.last() {
                Some(l) => {
                    let t = l.continue_to;
                    self.b.br(t);
                    Ok(())
                }
                None => {
                    self.err(*line, "continue outside loop");
                    Err(())
                }
            },
            Stmt::Return(val, line) => {
                let ctx_ret;
                let ctx_join;
                match self.rets.last() {
                    Some(r) => {
                        ctx_ret = r.ret_reg;
                        ctx_join = r.join;
                    }
                    None => {
                        self.err(*line, "return outside function");
                        return Err(());
                    }
                }
                if let Some(e) = val {
                    let (v, _) = self.gen_operand(e)?;
                    if let Some(r) = ctx_ret {
                        self.mov_to(r, v);
                    }
                }
                self.b.br(ctx_join);
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                if let ExprKind::Call(name, args) = &e.kind {
                    self.gen_call(e.line, name, args)?;
                    Ok(())
                } else {
                    let _ = self.gen_operand(e)?;
                    Ok(())
                }
            }
            Stmt::Out(e) => {
                let (v, _) = self.gen_operand(e)?;
                self.b.out(v);
                Ok(())
            }
            Stmt::FOut(e) => {
                let (v, _) = self.gen_operand(e)?;
                self.b.fout(v);
                Ok(())
            }
        }
    }
}

/// Compile a checked program into an IR module.
pub fn compile_program(name: &str, prog: &Program) -> Result<Module, Vec<Diag>> {
    let mut errs = Vec::new();

    // Constants.
    let mut consts: ConstTable = HashMap::new();
    for c in &prog.consts {
        match const_eval(&c.value, &consts) {
            Ok(v) => {
                consts.insert(c.name.clone(), v);
            }
            Err(d) => errs.push(d),
        }
    }

    // Globals.
    let mut module = Module::new(name);
    let mut globals = HashMap::new();
    for g in &prog.globals {
        let len = match const_eval(&g.len, &consts).and_then(|v| v.as_int(g.line)) {
            Ok(n) => n.max(1) as usize,
            Err(d) => {
                errs.push(d);
                1
            }
        };
        let init: Vec<i64> = g
            .init
            .iter()
            .filter_map(|e| const_eval(e, &consts).ok().map(|v| v.raw_bits()))
            .collect();
        let class = if g.ty == Ty::Float {
            GlobalClass::Float
        } else {
            GlobalClass::Int
        };
        let (_, addr) = module.add_global(g.name.clone(), class, len, init);
        globals.insert(g.name.clone(), (addr, g.ty));
    }
    if !errs.is_empty() {
        return Err(errs);
    }

    let main = match prog.function("main") {
        Some(m) => m.clone(),
        None => return Err(vec![Diag::new(0, "no `main` function")]),
    };

    let mut cg = Cg {
        prog,
        consts,
        module,
        globals,
        b: FunctionBuilder::new("main"),
        scopes: vec![HashMap::new()],
        loops: Vec::new(),
        rets: Vec::new(),
        inline_depth: 0,
        instance: 0,
        errs: Vec::new(),
    };

    // `main` is generated like an inline instance whose join halts.
    let ret_reg = main.ret.map(|t| cg.b.new_reg(Cg::class_of(t)));
    let join = cg.b.new_block("main_exit");
    cg.rets.push(RetCtx { ret_reg, join });
    let gen_ok = cg.gen_body(&main.body).is_ok();
    if gen_ok && !cg.b.is_terminated() {
        if let Some(r) = ret_reg {
            let z = if r.class == RegClass::Fp {
                Operand::FImm(0.0)
            } else {
                Operand::Imm(0)
            };
            cg.mov_to(r, z);
        }
        cg.b.br(join);
    }
    cg.rets.pop();
    cg.b.switch_to(join);
    match ret_reg {
        Some(r) if r.class == RegClass::Gp => {
            cg.b.halt(Operand::Reg(r));
        }
        _ => {
            cg.b.halt_imm(0);
        }
    }

    if !cg.errs.is_empty() {
        return Err(cg.errs);
    }
    if !gen_ok {
        return Err(vec![Diag::new(0, "code generation failed")]);
    }

    let mut module = cg.module;
    let func = cg.b.finish();
    let id = module.add_function(func);
    module.entry = Some(id);
    Ok(module)
}

#[cfg(test)]
mod tests {
    use casted_ir::interp::{self, OutVal};
    use casted_ir::Provenance;

    fn compile(src: &str) -> casted_ir::Module {
        crate::compile("t", src).unwrap_or_else(|e| panic!("compile failed: {e:?}"))
    }

    fn run_ints(src: &str) -> Vec<i64> {
        let m = compile(src);
        let r = interp::run(&m, 50_000_000).unwrap();
        assert!(
            matches!(r.stop, casted_ir::interp::StopReason::Halt(_)),
            "stopped with {:?}",
            r.stop
        );
        r.stream
            .iter()
            .map(|v| match v {
                OutVal::Int(i) => *i,
                OutVal::Float(f) => panic!("unexpected float {f}"),
            })
            .collect()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_ints("fn main() { out(1 + 2 * 3 - 4 / 2); }"), vec![5]);
        assert_eq!(run_ints("fn main() { out((1 + 2) * 3 % 5); }"), vec![4]);
        assert_eq!(run_ints("fn main() { out(7 & 3 | 8 ^ 1); }"), vec![3 | 9]);
        assert_eq!(run_ints("fn main() { out(1 << 4 >> 2); }"), vec![4]);
        assert_eq!(run_ints("fn main() { out(-5 + 2); }"), vec![-3]);
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(
            run_ints("fn main() { var s: int = 0; var i: int = 0; while i < 5 { s = s + i; i = i + 1; } out(s); }"),
            vec![10]
        );
        assert_eq!(
            run_ints("fn main() { var s: int = 0; for i in 0..5 { s = s + i; } out(s); }"),
            vec![10]
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            run_ints(
                "fn main() { var s: int = 0; for i in 0..10 { if i == 3 { continue; } if i == 6 { break; } s = s + i; } out(s); }"
            ),
            vec![0 + 1 + 2 + 4 + 5]
        );
    }

    #[test]
    fn short_circuit_conditions() {
        assert_eq!(
            run_ints(
                "fn main() { var a: int = 1; if a > 0 && a < 5 { out(1); } if a < 0 || a == 1 { out(2); } if !(a == 2) { out(3); } }"
            ),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn nested_if_else_chains() {
        let src = "fn classify(x: int) -> int { if x < 10 { return 0; } else if x < 100 { return 1; } else { return 2; } }\n fn main() { out(classify(5)); out(classify(50)); out(classify(500)); }";
        assert_eq!(run_ints(src), vec![0, 1, 2]);
    }

    #[test]
    fn globals_scalars_and_arrays() {
        let src = "global s: int; global a: [int; 4] = [9, 8, 7, 6];\n fn main() { s = a[0] + a[3]; out(s); a[1] = s; out(a[1]); }";
        assert_eq!(run_ints(src), vec![15, 15]);
    }

    #[test]
    fn local_arrays() {
        let src = "fn main() { var t: [int; 4]; for i in 0..4 { t[i] = i * i; } out(t[3]); }";
        assert_eq!(run_ints(src), vec![9]);
    }

    #[test]
    fn inlining_returns_value() {
        let src = "fn sq(x: int) -> int { return x * x; }\nfn main() { out(sq(7) + sq(2)); }";
        assert_eq!(run_ints(src), vec![53]);
    }

    #[test]
    fn inlining_in_loop_reuses_instance() {
        let src = "fn addone(x: int) -> int { return x + 1; }\nfn main() { var s: int = 0; for i in 0..100 { s = addone(s); } out(s); }";
        assert_eq!(run_ints(src), vec![100]);
    }

    #[test]
    fn nested_calls() {
        let src = "fn a(x: int) -> int { return x + 1; }\nfn b(x: int) -> int { return a(x) * 2; }\nfn main() { out(b(b(1))); }";
        assert_eq!(run_ints(src), vec![10]);
    }

    #[test]
    fn float_arithmetic() {
        let src = "fn main() { var x: float = 1.5; var y: float = x * 2.0 + 0.25; out(int(y * 4.0)); fout(y); }";
        let m = compile(src);
        let r = interp::run(&m, 100_000).unwrap();
        assert_eq!(r.stream[0], OutVal::Int(13));
        assert!(r.stream[1].bit_eq(&OutVal::Float(3.25)));
    }

    #[test]
    fn casts_between_int_and_float() {
        assert_eq!(
            run_ints("fn main() { out(int(float(7) / 2.0)); }"),
            vec![3]
        );
    }

    #[test]
    fn lib_functions_are_marked_library_code() {
        let src = "lib fn l(x: int) -> int { return x * 3; }\nfn main() { out(l(2)); }";
        let m = compile(src);
        let f = m.entry_fn();
        let lib_count = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|&&i| f.insn(i).prov == Provenance::LibraryCode)
            .count();
        assert!(lib_count >= 1, "no LibraryCode instructions found");
        assert_eq!(
            interp::run(&m, 100_000).unwrap().stream,
            vec![OutVal::Int(6)]
        );
    }

    #[test]
    fn void_function_call() {
        let src = "global g: int;\nfn bump() { g = g + 1; }\nfn main() { bump(); bump(); out(g); }";
        assert_eq!(run_ints(src), vec![2]);
    }

    #[test]
    fn early_return_skips_rest() {
        let src = "fn f(x: int) -> int { if x > 0 { return 1; } out(99); return 0; }\nfn main() { out(f(5)); }";
        assert_eq!(run_ints(src), vec![1]);
    }

    #[test]
    fn implicit_return_default() {
        let src = "fn f(x: int) -> int { if x > 0 { return 1; } }\nfn main() { out(f(-1)); }";
        assert_eq!(run_ints(src), vec![0]);
    }

    #[test]
    fn main_exit_code() {
        let m = compile("fn main() -> int { return 42; }");
        let r = interp::run(&m, 1000).unwrap();
        assert_eq!(r.exit_code(), Some(42));
    }

    #[test]
    fn constant_index_folds_into_offset() {
        // a[2] with constant index: expect no Shl in the program.
        let m = compile("global a: [int; 4];\nfn main() { out(a[2]); }");
        let f = m.entry_fn();
        let has_shl = f
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .any(|&i| f.insn(i).op == casted_ir::Opcode::Shl);
        assert!(!has_shl);
    }

    #[test]
    fn division_by_zero_is_exception() {
        let m = compile("fn main() { var z: int = 0; out(5 / z); }");
        let r = interp::run(&m, 1000).unwrap();
        assert!(matches!(
            r.stop,
            casted_ir::interp::StopReason::Exception(_)
        ));
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let src = "fn main() { var x: int = 1; if x == 1 { var x: int = 2; out(x); } out(x); }";
        assert_eq!(run_ints(src), vec![2, 1]);
    }

    #[test]
    fn for_bound_evaluated_once() {
        let src = "global n: int = 3;\nfn main() { var c: int = 0; for i in 0..n { n = 100; c = c + 1; } out(c); }";
        assert_eq!(run_ints(src), vec![3]);
    }
}
