//! MiniC semantic analysis: name resolution, type checking, const
//! evaluation, and recursion rejection (every call must be inlinable).

use std::collections::HashMap;

use crate::ast::*;
use crate::Diag;

/// A compile-time constant value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConstVal {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
}

impl ConstVal {
    /// The type of the constant.
    pub fn ty(self) -> Ty {
        match self {
            ConstVal::Int(_) => Ty::Int,
            ConstVal::Float(_) => Ty::Float,
        }
    }

    /// Integer view; errors if float.
    pub fn as_int(self, line: u32) -> Result<i64, Diag> {
        match self {
            ConstVal::Int(v) => Ok(v),
            ConstVal::Float(_) => Err(Diag::new(line, "expected integer constant")),
        }
    }

    /// Raw 64-bit representation used for global initializers.
    pub fn raw_bits(self) -> i64 {
        match self {
            ConstVal::Int(v) => v,
            ConstVal::Float(v) => v.to_bits() as i64,
        }
    }
}

/// Table of named compile-time constants.
pub type ConstTable = HashMap<String, ConstVal>;

/// Evaluate a constant expression over `consts`.
pub fn const_eval(expr: &Expr, consts: &ConstTable) -> Result<ConstVal, Diag> {
    let line = expr.line;
    match &expr.kind {
        ExprKind::IntLit(v) => Ok(ConstVal::Int(*v)),
        ExprKind::FloatLit(v) => Ok(ConstVal::Float(*v)),
        ExprKind::Name(n) => consts
            .get(n)
            .copied()
            .ok_or_else(|| Diag::new(line, format!("`{n}` is not a constant"))),
        ExprKind::Un(UnOp::Neg, e) => match const_eval(e, consts)? {
            ConstVal::Int(v) => Ok(ConstVal::Int(v.wrapping_neg())),
            ConstVal::Float(v) => Ok(ConstVal::Float(-v)),
        },
        ExprKind::Bin(op, a, b) => {
            let a = const_eval(a, consts)?;
            let b = const_eval(b, consts)?;
            match (a, b) {
                (ConstVal::Int(x), ConstVal::Int(y)) => {
                    let v = match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        BinOp::Mul => x.wrapping_mul(y),
                        BinOp::Div if y != 0 => x.wrapping_div(y),
                        BinOp::Rem if y != 0 => x.wrapping_rem(y),
                        BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                        BinOp::Shr => ((x as u64) >> (y & 63)) as i64,
                        BinOp::And => x & y,
                        BinOp::Or => x | y,
                        BinOp::Xor => x ^ y,
                        _ => return Err(Diag::new(line, "unsupported constant operator")),
                    };
                    Ok(ConstVal::Int(v))
                }
                (ConstVal::Float(x), ConstVal::Float(y)) => {
                    let v = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        _ => return Err(Diag::new(line, "unsupported constant operator")),
                    };
                    Ok(ConstVal::Float(v))
                }
                _ => Err(Diag::new(line, "constant operand types differ")),
            }
        }
        ExprKind::CastInt(e) => match const_eval(e, consts)? {
            ConstVal::Int(v) => Ok(ConstVal::Int(v)),
            ConstVal::Float(v) => Ok(ConstVal::Int(v as i64)),
        },
        ExprKind::CastFloat(e) => match const_eval(e, consts)? {
            ConstVal::Int(v) => Ok(ConstVal::Float(v as f64)),
            ConstVal::Float(v) => Ok(ConstVal::Float(v)),
        },
        _ => Err(Diag::new(line, "expression is not a constant")),
    }
}

/// What a name refers to, in resolution priority order.
#[derive(Clone, Debug, PartialEq)]
enum Binding {
    Local(Ty),
    LocalArray(Ty),
    Const(ConstVal),
    GlobalScalar(Ty),
    GlobalArray(Ty),
}

struct Checker<'a> {
    prog: &'a Program,
    consts: ConstTable,
    globals: HashMap<String, (Ty, bool)>, // (elem ty, is_array)
    errs: Vec<Diag>,
    scopes: Vec<HashMap<String, Binding>>,
    loop_depth: usize,
    current_ret: Option<Ty>,
}

impl<'a> Checker<'a> {
    fn err(&mut self, line: u32, msg: impl Into<String>) {
        self.errs.push(Diag::new(line, msg));
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b.clone());
            }
        }
        if let Some(v) = self.consts.get(name) {
            return Some(Binding::Const(*v));
        }
        if let Some(&(ty, is_array)) = self.globals.get(name) {
            return Some(if is_array {
                Binding::GlobalArray(ty)
            } else {
                Binding::GlobalScalar(ty)
            });
        }
        None
    }

    fn declare(&mut self, line: u32, name: &str, b: Binding) {
        let scope = self.scopes.last_mut().expect("scope stack empty");
        if scope.contains_key(name) {
            self.err(line, format!("`{name}` already declared in this scope"));
        } else {
            self.scopes.last_mut().unwrap().insert(name.to_string(), b);
        }
    }

    /// Type of an expression; pushes diagnostics and returns a best
    /// guess on error so checking can continue.
    fn type_of(&mut self, e: &Expr) -> Ty {
        let line = e.line;
        match &e.kind {
            ExprKind::IntLit(_) => Ty::Int,
            ExprKind::FloatLit(_) => Ty::Float,
            ExprKind::Name(n) => match self.lookup(n) {
                Some(Binding::Local(t)) | Some(Binding::GlobalScalar(t)) => t,
                Some(Binding::Const(v)) => v.ty(),
                Some(Binding::LocalArray(_)) | Some(Binding::GlobalArray(_)) => {
                    self.err(line, format!("array `{n}` used without an index"));
                    Ty::Int
                }
                None => {
                    self.err(line, format!("undefined name `{n}`"));
                    Ty::Int
                }
            },
            ExprKind::Index(n, idx) => {
                let it = self.type_of(idx);
                if it != Ty::Int {
                    self.err(line, "array index must be `int`");
                }
                match self.lookup(n) {
                    Some(Binding::LocalArray(t)) | Some(Binding::GlobalArray(t)) => t,
                    Some(_) => {
                        self.err(line, format!("`{n}` is not an array"));
                        Ty::Int
                    }
                    None => {
                        self.err(line, format!("undefined array `{n}`"));
                        Ty::Int
                    }
                }
            }
            ExprKind::Bin(op, a, b) => {
                let ta = self.type_of(a);
                let tb = self.type_of(b);
                if op.is_logical() {
                    if ta != Ty::Bool || tb != Ty::Bool {
                        self.err(line, "`&&`/`||` require bool operands");
                    }
                    Ty::Bool
                } else if op.is_cmp() {
                    if ta != tb {
                        self.err(line, format!("cannot compare {ta} with {tb}"));
                    } else if ta == Ty::Bool {
                        self.err(line, "cannot compare bool values");
                    }
                    Ty::Bool
                } else if op.is_int_only() {
                    if ta != Ty::Int || tb != Ty::Int {
                        self.err(line, format!("operator requires int operands, got {ta}/{tb}"));
                    }
                    Ty::Int
                } else {
                    if ta != tb || ta == Ty::Bool {
                        self.err(line, format!("arithmetic on mismatched types {ta}/{tb}"));
                        Ty::Int
                    } else {
                        ta
                    }
                }
            }
            ExprKind::Un(UnOp::Neg, inner) => {
                let t = self.type_of(inner);
                if t == Ty::Bool {
                    self.err(line, "cannot negate a bool");
                    Ty::Int
                } else {
                    t
                }
            }
            ExprKind::Un(UnOp::Not, inner) => {
                let t = self.type_of(inner);
                if t != Ty::Bool {
                    self.err(line, "`!` requires a bool operand");
                }
                Ty::Bool
            }
            ExprKind::Call(name, args) => {
                let fndef = match self.prog.function(name) {
                    Some(f) => f.clone(),
                    None => {
                        self.err(line, format!("call to undefined function `{name}`"));
                        return Ty::Int;
                    }
                };
                if fndef.params.len() != args.len() {
                    self.err(
                        line,
                        format!(
                            "`{name}` takes {} arguments, {} given",
                            fndef.params.len(),
                            args.len()
                        ),
                    );
                }
                for (p, a) in fndef.params.iter().zip(args) {
                    let t = self.type_of(a);
                    if t != p.ty {
                        self.err(line, format!("argument `{}` expects {}, got {t}", p.name, p.ty));
                    }
                }
                match fndef.ret {
                    Some(t) => t,
                    None => {
                        // Void calls are only valid as statements; the
                        // statement checker handles that case before
                        // calling type_of.
                        self.err(line, format!("void function `{name}` used as a value"));
                        Ty::Int
                    }
                }
            }
            ExprKind::CastInt(inner) => {
                let t = self.type_of(inner);
                if t == Ty::Bool {
                    self.err(line, "cannot cast bool");
                }
                Ty::Int
            }
            ExprKind::CastFloat(inner) => {
                let t = self.type_of(inner);
                if t == Ty::Bool {
                    self.err(line, "cannot cast bool");
                }
                Ty::Float
            }
        }
    }

    fn check_body(&mut self, body: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for s in body {
            self.check_stmt(s);
        }
        self.scopes.pop();
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Var { name, ty, init, line } => {
                let t = self.type_of(init);
                if t != *ty {
                    self.err(*line, format!("initializer of `{name}` has type {t}, expected {ty}"));
                }
                self.declare(*line, name, Binding::Local(*ty));
            }
            Stmt::VarArray { name, ty, len, line } => {
                match const_eval(len, &self.consts).and_then(|v| v.as_int(*line)) {
                    Ok(n) if n > 0 => {}
                    Ok(_) => self.err(*line, "array length must be positive"),
                    Err(d) => self.errs.push(d),
                }
                self.declare(*line, name, Binding::LocalArray(*ty));
            }
            Stmt::Assign { name, value, line } => {
                let vt = self.type_of(value);
                match self.lookup(name) {
                    Some(Binding::Local(t)) | Some(Binding::GlobalScalar(t)) => {
                        if t != vt {
                            self.err(*line, format!("assigning {vt} to `{name}` of type {t}"));
                        }
                    }
                    Some(Binding::Const(_)) => {
                        self.err(*line, format!("cannot assign to constant `{name}`"))
                    }
                    Some(_) => self.err(*line, format!("cannot assign to array `{name}` without index")),
                    None => self.err(*line, format!("undefined name `{name}`")),
                }
            }
            Stmt::AssignIndex {
                name,
                index,
                value,
                line,
            } => {
                let it = self.type_of(index);
                if it != Ty::Int {
                    self.err(*line, "array index must be `int`");
                }
                let vt = self.type_of(value);
                match self.lookup(name) {
                    Some(Binding::LocalArray(t)) | Some(Binding::GlobalArray(t)) => {
                        if t != vt {
                            self.err(*line, format!("storing {vt} into array of {t}"));
                        }
                    }
                    Some(_) => self.err(*line, format!("`{name}` is not an array")),
                    None => self.err(*line, format!("undefined array `{name}`")),
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.type_of(cond) != Ty::Bool {
                    self.err(cond.line, "if condition must be bool");
                }
                self.check_body(then_body);
                self.check_body(else_body);
            }
            Stmt::While { cond, body } => {
                if self.type_of(cond) != Ty::Bool {
                    self.err(cond.line, "while condition must be bool");
                }
                self.loop_depth += 1;
                self.check_body(body);
                self.loop_depth -= 1;
            }
            Stmt::For { name, lo, hi, body } => {
                if self.type_of(lo) != Ty::Int || self.type_of(hi) != Ty::Int {
                    self.err(lo.line, "for-range bounds must be int");
                }
                self.loop_depth += 1;
                self.scopes.push(HashMap::new());
                self.declare(lo.line, name, Binding::Local(Ty::Int));
                for s in body {
                    self.check_stmt(s);
                }
                self.scopes.pop();
                self.loop_depth -= 1;
            }
            Stmt::Break(line) | Stmt::Continue(line) => {
                if self.loop_depth == 0 {
                    self.err(*line, "break/continue outside of a loop");
                }
            }
            Stmt::Return(val, line) => match (self.current_ret, val) {
                (None, None) => {}
                (None, Some(_)) => self.err(*line, "void function cannot return a value"),
                (Some(t), Some(e)) => {
                    let vt = self.type_of(e);
                    if vt != t {
                        self.err(*line, format!("returning {vt}, function returns {t}"));
                    }
                }
                (Some(_), None) => self.err(*line, "missing return value"),
            },
            Stmt::ExprStmt(e) => {
                // Void calls are allowed here.
                if let ExprKind::Call(name, args) = &e.kind {
                    if let Some(f) = self.prog.function(name) {
                        if f.ret.is_none() {
                            let fndef = f.clone();
                            if fndef.params.len() != args.len() {
                                self.err(e.line, format!("`{name}` argument count mismatch"));
                            }
                            for (p, a) in fndef.params.iter().zip(args) {
                                let t = self.type_of(a);
                                if t != p.ty {
                                    self.err(e.line, format!("argument `{}` type mismatch", p.name));
                                }
                            }
                            return;
                        }
                    }
                }
                self.type_of(e);
            }
            Stmt::Out(e) => {
                if self.type_of(e) != Ty::Int {
                    self.err(e.line, "out() takes an int");
                }
            }
            Stmt::FOut(e) => {
                if self.type_of(e) != Ty::Float {
                    self.err(e.line, "fout() takes a float");
                }
            }
        }
    }
}

/// Detect call cycles (recursion cannot be inlined).
fn check_recursion(prog: &Program, errs: &mut Vec<Diag>) {
    fn callees(body: &[Stmt], out: &mut Vec<String>) {
        fn walk_expr(e: &Expr, out: &mut Vec<String>) {
            match &e.kind {
                ExprKind::Call(n, args) => {
                    out.push(n.clone());
                    for a in args {
                        walk_expr(a, out);
                    }
                }
                ExprKind::Bin(_, a, b) => {
                    walk_expr(a, out);
                    walk_expr(b, out);
                }
                ExprKind::Un(_, a) | ExprKind::CastInt(a) | ExprKind::CastFloat(a) => {
                    walk_expr(a, out)
                }
                ExprKind::Index(_, i) => walk_expr(i, out),
                _ => {}
            }
        }
        for s in body {
            match s {
                Stmt::Var { init, .. } => walk_expr(init, out),
                Stmt::VarArray { .. } => {}
                Stmt::Assign { value, .. } => walk_expr(value, out),
                Stmt::AssignIndex { index, value, .. } => {
                    walk_expr(index, out);
                    walk_expr(value, out);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    walk_expr(cond, out);
                    callees(then_body, out);
                    callees(else_body, out);
                }
                Stmt::While { cond, body } => {
                    walk_expr(cond, out);
                    callees(body, out);
                }
                Stmt::For { lo, hi, body, .. } => {
                    walk_expr(lo, out);
                    walk_expr(hi, out);
                    callees(body, out);
                }
                Stmt::Return(Some(e), _) => walk_expr(e, out),
                Stmt::ExprStmt(e) | Stmt::Out(e) | Stmt::FOut(e) => walk_expr(e, out),
                _ => {}
            }
        }
    }

    // DFS with colors over the call graph.
    let mut color: HashMap<&str, u8> = HashMap::new(); // 0 white 1 gray 2 black
    fn dfs<'p>(
        prog: &'p Program,
        name: &'p str,
        color: &mut HashMap<&'p str, u8>,
        errs: &mut Vec<Diag>,
        callees_of: &dyn Fn(&'p FnDef) -> Vec<String>,
    ) {
        match color.get(name) {
            Some(1) => {
                errs.push(Diag::new(
                    prog.function(name).map(|f| f.line).unwrap_or(0),
                    format!("recursive call cycle through `{name}` (MiniC functions must be inlinable)"),
                ));
                return;
            }
            Some(2) => return,
            _ => {}
        }
        let Some(f) = prog.function(name) else { return };
        color.insert(name, 1);
        for c in callees_of(f) {
            if let Some(callee) = prog.function(&c) {
                dfs(prog, callee.name.as_str(), color, errs, callees_of);
            }
        }
        color.insert(name, 2);
    }
    let callees_of = |f: &FnDef| {
        let mut out = Vec::new();
        callees(&f.body, &mut out);
        out
    };
    for f in &prog.functions {
        dfs(prog, &f.name, &mut color, errs, &callees_of);
    }
}

/// Run semantic analysis on a parsed program.
pub fn check(prog: &Program) -> Result<(), Vec<Diag>> {
    let mut errs = Vec::new();

    // Constants (in order; later consts may reference earlier ones).
    let mut consts: ConstTable = HashMap::new();
    for c in &prog.consts {
        match const_eval(&c.value, &consts) {
            Ok(v) => {
                if v.ty() != c.ty {
                    errs.push(Diag::new(
                        c.line,
                        format!("const `{}` declared {} but value is {}", c.name, c.ty, v.ty()),
                    ));
                }
                if consts.insert(c.name.clone(), v).is_some() {
                    errs.push(Diag::new(c.line, format!("duplicate const `{}`", c.name)));
                }
            }
            Err(d) => errs.push(d),
        }
    }

    // Globals.
    let mut globals: HashMap<String, (Ty, bool)> = HashMap::new();
    for g in &prog.globals {
        if g.ty == Ty::Bool {
            errs.push(Diag::new(g.line, "globals cannot be bool"));
        }
        let len = match const_eval(&g.len, &consts).and_then(|v| v.as_int(g.line)) {
            Ok(n) if n > 0 => n,
            Ok(_) => {
                errs.push(Diag::new(g.line, "global length must be positive"));
                1
            }
            Err(d) => {
                errs.push(d);
                1
            }
        };
        if g.init.len() as i64 > len {
            errs.push(Diag::new(
                g.line,
                format!("`{}` initializer has {} values for length {}", g.name, g.init.len(), len),
            ));
        }
        for e in &g.init {
            match const_eval(e, &consts) {
                Ok(v) if v.ty() == g.ty => {}
                Ok(v) => errs.push(Diag::new(
                    g.line,
                    format!("initializer of `{}` has wrong type {}", g.name, v.ty()),
                )),
                Err(d) => errs.push(d),
            }
        }
        if globals.insert(g.name.clone(), (g.ty, g.is_array)).is_some() {
            errs.push(Diag::new(g.line, format!("duplicate global `{}`", g.name)));
        }
    }

    // Function table sanity.
    let mut seen = HashMap::new();
    for f in &prog.functions {
        if seen.insert(f.name.clone(), ()).is_some() {
            errs.push(Diag::new(f.line, format!("duplicate function `{}`", f.name)));
        }
        for p in &f.params {
            if p.ty == Ty::Bool {
                errs.push(Diag::new(f.line, "parameters cannot be bool"));
            }
        }
        if f.ret == Some(Ty::Bool) {
            errs.push(Diag::new(f.line, "functions cannot return bool"));
        }
    }
    match prog.function("main") {
        None => errs.push(Diag::new(0, "program has no `main` function")),
        Some(m) => {
            if !m.params.is_empty() {
                errs.push(Diag::new(m.line, "`main` takes no parameters"));
            }
            if m.is_lib {
                errs.push(Diag::new(m.line, "`main` cannot be a lib function"));
            }
        }
    }

    check_recursion(prog, &mut errs);

    // Per-function body checks.
    for f in &prog.functions {
        let mut ck = Checker {
            prog,
            consts: consts.clone(),
            globals: globals.clone(),
            errs: Vec::new(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
            current_ret: f.ret,
        };
        for p in &f.params {
            ck.declare(f.line, &p.name, Binding::Local(p.ty));
        }
        for s in &f.body {
            ck.check_stmt(s);
        }
        errs.extend(ck.errs);
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), Vec<Diag>> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        assert!(check_src(
            "const N: int = 2 + 2;\nglobal g: [int; N];\nfn main() -> int { var x: int = 1; g[0] = x; return g[0]; }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_missing_main() {
        let errs = check_src("fn foo() { return; }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("no `main`")));
    }

    #[test]
    fn rejects_type_mismatch() {
        let errs =
            check_src("fn main() { var x: int = 1.5; }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("initializer")));
    }

    #[test]
    fn rejects_int_condition() {
        let errs = check_src("fn main() { if 1 { } }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("must be bool")));
    }

    #[test]
    fn rejects_recursion() {
        let errs = check_src("fn f(x: int) -> int { return f(x); }\nfn main() { }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("recursive")));
    }

    #[test]
    fn rejects_mutual_recursion() {
        let errs = check_src(
            "fn a(x: int) -> int { return b(x); }\nfn b(x: int) -> int { return a(x); }\nfn main() { }",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("recursive")));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let errs = check_src("fn main() { break; }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("outside")));
    }

    #[test]
    fn rejects_undefined_names() {
        let errs = check_src("fn main() { out(nope); }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("undefined")));
    }

    #[test]
    fn rejects_assignment_to_const() {
        let errs = check_src("const N: int = 1;\nfn main() { N = 2; }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("constant")));
    }

    #[test]
    fn rejects_wrong_arg_types() {
        let errs = check_src(
            "fn f(x: float) -> float { return x; }\nfn main() { var y: float = f(1); }",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("expects float")));
    }

    #[test]
    fn const_eval_arithmetic() {
        let consts = ConstTable::new();
        let toks = lex("fn main() { var x: int = (3 + 4) * 2; }").unwrap();
        let prog = parse(&toks).unwrap();
        if let Stmt::Var { init, .. } = &prog.functions[0].body[0] {
            assert_eq!(const_eval(init, &consts).unwrap(), ConstVal::Int(14));
        } else {
            panic!();
        }
    }

    #[test]
    fn for_loop_variable_scoped_to_body() {
        let errs = check_src("fn main() { for i in 0..4 { out(i); } out(i); }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("undefined")));
    }

    #[test]
    fn void_call_as_statement_ok() {
        assert!(check_src("fn f() { out(1); }\nfn main() { f(); }").is_ok());
    }

    #[test]
    fn void_call_as_value_rejected() {
        let errs = check_src("fn f() { }\nfn main() { var x: int = f(); }").unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("void")));
    }
}
