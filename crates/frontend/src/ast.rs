//! MiniC abstract syntax tree.

/// Scalar value types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean; exists only transiently in conditions (it cannot be
    /// stored in variables or arrays).
    Bool,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Float => write!(f, "float"),
            Ty::Bool => write!(f, "bool"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical and.
    LAnd,
    /// Short-circuit logical or.
    LOr,
}

impl BinOp {
    /// True for the six comparison operators (result type `bool`).
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }

    /// True for operators defined only on integers.
    pub fn is_int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (bool only).
    Not,
}

/// Expressions, annotated with the source line for diagnostics.
#[derive(Clone, Debug)]
pub struct Expr {
    /// Node payload.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression payloads.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable / const / scalar-global read.
    Name(String),
    /// Array element read: `name[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Function call (user or lib function).
    Call(String, Vec<Expr>),
    /// `int(e)` cast.
    CastInt(Box<Expr>),
    /// `float(e)` cast.
    CastFloat(Box<Expr>),
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `var name: ty = init;` — scalar local.
    Var {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initializer.
        init: Expr,
        /// Source line.
        line: u32,
    },
    /// `var name: [ty; len];` — local array (statically allocated).
    VarArray {
        /// Array name.
        name: String,
        /// Element type.
        ty: Ty,
        /// Length (a const expression resolved by the parser/sema).
        len: Expr,
        /// Source line.
        line: u32,
    },
    /// `name = expr;` (scalar local or scalar global).
    Assign {
        /// Target name.
        name: String,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `name[index] = expr;`.
    AssignIndex {
        /// Array name.
        name: String,
        /// Element index.
        index: Expr,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if cond { .. } else { .. }`.
    If {
        /// Condition (must be `bool`).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while cond { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for name in lo..hi { .. }` — counted loop over `int`.
    For {
        /// Induction variable (fresh `int` binding).
        name: String,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `return;` / `return expr;`
    Return(Option<Expr>, u32),
    /// Expression statement (a call evaluated for effect).
    ExprStmt(Expr),
    /// `out(expr);` — append int to the observable output stream.
    Out(Expr),
    /// `fout(expr);` — append float to the observable output stream.
    FOut(Expr),
}

/// A function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type (`int` or `float`).
    pub ty: Ty,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type; `None` = void.
    pub ret: Option<Ty>,
    /// Body.
    pub body: Vec<Stmt>,
    /// `lib fn` — compiled as unprotected library code.
    pub is_lib: bool,
    /// Source line of the definition.
    pub line: u32,
}

/// A global declaration.
#[derive(Clone, Debug)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Element count; 1 for scalar globals.
    pub len: Expr,
    /// `true` if declared as an array (`[ty; len]` syntax).
    pub is_array: bool,
    /// Optional initializer values (const expressions).
    pub init: Vec<Expr>,
    /// Source line.
    pub line: u32,
}

/// A compile-time constant declaration.
#[derive(Clone, Debug)]
pub struct ConstDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Value expression (const-evaluated).
    pub value: Expr,
    /// Source line.
    pub line: u32,
}

/// A full MiniC program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// `const` declarations.
    pub consts: Vec<ConstDef>,
    /// `global` declarations.
    pub globals: Vec<GlobalDef>,
    /// Function definitions (must include `main`).
    pub functions: Vec<FnDef>,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}
