//! # casted-frontend — the MiniC language
//!
//! The paper compiles MediaBench II and SPEC CINT2000 C programs with
//! GCC. This crate plays GCC's front-end role for the reproduction: it
//! compiles **MiniC**, a small C-like language, down to the
//! `casted-ir` virtual-register IR that the CASTED passes transform.
//!
//! MiniC is deliberately small but expressive enough to write the seven
//! benchmark kernels of `casted-workloads`:
//!
//! ```text
//! const N: int = 4;
//! global acc: int;
//! global table: [int; 16];
//!
//! lib fn clip(x: int, lo: int, hi: int) -> int {
//!     if x < lo { return lo; }
//!     if x > hi { return hi; }
//!     return x;
//! }
//!
//! fn main() -> int {
//!     var s: int = 0;
//!     for i in 0..N {
//!         table[i] = clip(i * 100, 0, 255);
//!         s = s + table[i];
//!     }
//!     acc = s;
//!     out(s);
//!     return 0;
//! }
//! ```
//!
//! * Types: `int` (i64), `float` (f64), `bool` (conditions only),
//!   global/local fixed-size arrays.
//! * All user and `lib` functions are **fully inlined** at their call
//!   sites (recursion is rejected), so the compiled artifact is a
//!   single entry function — calls never cross the error-detection
//!   sphere of replication.
//! * Functions declared `lib fn` model *binary system libraries*: their
//!   inlined instructions carry [`casted_ir::Provenance::LibraryCode`]
//!   and are skipped by the error-detection pass, exactly as the paper
//!   leaves linked library binaries unprotected.
//!
//! The main entry point is [`compile`].

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use ast::Program;
pub use codegen::compile_program;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;

use casted_ir::Module;

/// A front-end diagnostic with a 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// 1-based line number the diagnostic points at.
    pub line: u32,
    /// Message text.
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Diag {
    /// Build a diagnostic.
    pub fn new(line: u32, msg: impl Into<String>) -> Self {
        Diag {
            line,
            msg: msg.into(),
        }
    }
}

/// Compile MiniC source text into a verified IR module named `name`.
///
/// Runs the full pipeline: lex → parse → semantic analysis → inlining
/// code generation → IR verification. Each stage is span-timed into
/// the `frontend.*_ns` histograms when metrics are enabled (see
/// `docs/OBSERVABILITY.md`).
pub fn compile(name: &str, source: &str) -> Result<Module, Vec<Diag>> {
    let _total = casted_obs::span("frontend.compile_ns");
    let tokens = {
        let _s = casted_obs::span("frontend.lex_ns");
        lex(source)?
    };
    casted_obs::add("frontend.tokens", tokens.len() as u64);
    let program = {
        let _s = casted_obs::span("frontend.parse_ns");
        parse(&tokens)?
    };
    {
        let _s = casted_obs::span("frontend.sema_ns");
        sema::check(&program)?;
    }
    let module = {
        let _s = casted_obs::span("frontend.codegen_ns");
        compile_program(name, &program)?
    };
    let _v = casted_obs::span("frontend.verify_ns");
    if let Err(errs) = casted_ir::verify::verify_module(&module) {
        // A verifier failure after successful sema is a front-end bug;
        // surface it loudly with context.
        return Err(errs
            .into_iter()
            .map(|e| Diag::new(0, format!("internal: generated invalid IR: {e}")))
            .collect());
    }
    casted_obs::inc("frontend.modules_compiled");
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::interp::{self, OutVal};

    fn run_src(src: &str) -> Vec<OutVal> {
        let m = compile("t", src).unwrap_or_else(|e| {
            panic!("compile failed: {:?}", e);
        });
        let r = interp::run(&m, 10_000_000).unwrap();
        assert!(r.exit_code().is_some(), "program did not halt: {:?}", r.stop);
        r.stream
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let src = r#"
const N: int = 4;
global acc: int;
global table: [int; 16];

lib fn clip(x: int, lo: int, hi: int) -> int {
    if x < lo { return lo; }
    if x > hi { return hi; }
    return x;
}

fn main() -> int {
    var s: int = 0;
    for i in 0..N {
        table[i] = clip(i * 100, 0, 255);
        s = s + table[i];
    }
    acc = s;
    out(s);
    return 0;
}
"#;
        // clip(0)=0, clip(100)=100, clip(200)=200, clip(300)=255 -> 555
        assert_eq!(run_src(src), vec![OutVal::Int(555)]);
    }
}
