//! Property-based tests of the MiniC front end: randomly generated
//! well-formed programs must compile, verify and run deterministically,
//! and the lexer must be total over arbitrary input bytes.
//!
//! Driven by the in-repo harness (`casted_util::prop`).

use casted_ir::interp;
use casted_util::prop::run_cases;
use casted_util::rng::Rng;
use casted_util::{prop_assert, prop_assert_eq};

/// Generate a random well-formed MiniC `main`: a handful of scalar
/// variables updated inside a bounded `for` loop with random
/// arithmetic over them, then printed. Divisions use non-zero
/// constant divisors so the program never faults.
fn random_minic(rng: &mut Rng) -> String {
    let nvars = rng.gen_range(2usize..=4);
    let mut src = String::from("fn main() {\n");
    for v in 0..nvars {
        let init = rng.gen_range(-20i64..=20);
        src.push_str(&format!("    var v{v}: int = {init};\n"));
    }
    let iters = rng.gen_range(3i64..=12);
    src.push_str(&format!("    for i in 0..{iters} {{\n"));
    let stmts = rng.gen_range(2usize..=6);
    for _ in 0..stmts {
        let dst = rng.gen_range(0usize..nvars);
        let a = rng.gen_range(0usize..nvars);
        let b = rng.gen_range(0usize..nvars);
        let line = match rng.gen_range(0u32..5) {
            0 => format!("        v{dst} = v{a} + v{b} * {};\n", rng.gen_range(1i64..=5)),
            1 => format!("        v{dst} = v{a} - v{b} + i;\n"),
            2 => format!("        v{dst} = v{a} / {};\n", rng.gen_range(1i64..=7)),
            3 => format!(
                "        if v{a} < v{b} {{ v{dst} = v{a} + {}; }} else {{ v{dst} = v{b}; }}\n",
                rng.gen_range(0i64..=9)
            ),
            _ => format!("        v{dst} = v{a} * i - {};\n", rng.gen_range(0i64..=3)),
        };
        src.push_str(&line);
    }
    src.push_str("    }\n");
    for v in 0..nvars {
        src.push_str(&format!("    out(v{v});\n"));
    }
    src.push_str("}\n");
    src
}

#[test]
fn generated_programs_compile_and_run() {
    run_cases("generated_programs_compile_and_run", 48, |rng| {
        let src = random_minic(rng);
        let m = casted_frontend::compile("gen", &src)
            .map_err(|e| format!("compile failed for:\n{src}\n{e:?}"))?;
        prop_assert!(casted_ir::verify::verify_module(&m).is_ok(), "src:\n{src}");
        let r = interp::run(&m, 2_000_000).unwrap();
        prop_assert_eq!(r.stop, interp::StopReason::Halt(0));
        prop_assert!(!r.stream.is_empty());
        Ok(())
    });
}

#[test]
fn compilation_is_deterministic() {
    run_cases("compilation_is_deterministic", 24, |rng| {
        let src = random_minic(rng);
        let a = casted_frontend::compile("gen", &src).unwrap();
        let b = casted_frontend::compile("gen", &src).unwrap();
        let ra = interp::run(&a, 2_000_000).unwrap();
        let rb = interp::run(&b, 2_000_000).unwrap();
        prop_assert_eq!(ra.stream.len(), rb.stream.len());
        for (x, y) in ra.stream.iter().zip(&rb.stream) {
            prop_assert!(x.bit_eq(y));
        }
        Ok(())
    });
}

/// Stronger than stream equality: recompiling the same source must
/// reproduce the module *text* byte-for-byte. The difftest replay
/// format depends on this — a replay line names a generated program
/// only because every producer in the workspace (testgen and the
/// front end alike) is textually deterministic.
#[test]
fn recompilation_is_textually_deterministic() {
    run_cases("recompilation_is_textually_deterministic", 24, |rng| {
        let src = random_minic(rng);
        let a = casted_frontend::compile("gen", &src).unwrap();
        let b = casted_frontend::compile("gen", &src).unwrap();
        prop_assert_eq!(a.to_string(), b.to_string());
        Ok(())
    });
}

#[test]
fn lexer_is_total_over_arbitrary_bytes() {
    run_cases("lexer_is_total_over_arbitrary_bytes", 64, |rng| {
        // Random printable-ish soup, with MiniC punctuation mixed in so
        // operator paths get hit; lexing must never panic.
        let len = rng.gen_range(0usize..200);
        let soup: String = (0..len)
            .map(|_| {
                let c = rng.gen_range(0x20u8..0x7F);
                c as char
            })
            .collect();
        let _ = casted_frontend::lex(&soup);
        Ok(())
    });
}

#[test]
fn parser_is_total_over_token_soup() {
    run_cases("parser_is_total_over_token_soup", 64, |rng| {
        let kws = [
            "fn", "main", "var", "int", "float", "for", "in", "if", "else", "return", "out",
            "{", "}", "(", ")", ";", ":", "=", "+", "*", "<", "..", "0", "1", "x",
        ];
        let len = rng.gen_range(0usize..60);
        let soup: String = (0..len)
            .map(|_| format!("{} ", rng.pick(&kws)))
            .collect();
        // Must return diagnostics or a program — never panic or hang.
        let _ = casted_frontend::compile("soup", &soup);
        Ok(())
    });
}
