//! # casted-util — zero-dependency foundation for the CASTED workspace
//!
//! The build environment has no registry access, so everything the
//! workspace used to pull from crates.io lives here instead:
//!
//! * [`rng`] — a deterministic, seedable SplitMix64/xoshiro256++ RNG
//!   with `rand`-style helpers (`gen_range`, `gen_bool`, `shuffle`).
//!   Replaces `rand`. Unlike `StdRng` (whose algorithm is explicitly
//!   not stability-guaranteed across `rand` versions), the stream
//!   produced for a given seed is a documented, golden-tested part of
//!   this workspace's contract — fault-injection campaigns are
//!   bit-reproducible forever.
//! * [`pool`] — a scoped std-thread worker pool. Replaces
//!   `crossbeam::scope` + `parking_lot` in the experiment sweeps.
//! * [`prop`] — a minimal property-testing harness (seeded case
//!   generator, no shrinking) driven by [`rng::Rng`]. Replaces
//!   `proptest` in the `prop_*.rs` test files.
//! * [`bench`] — a wall-clock bench runner (warmup + N samples +
//!   median/MAD report) for `harness = false` bench targets. Replaces
//!   `criterion`.
//! * [`hash`] — streaming 64-bit FNV-1a digests, the shared
//!   fingerprint format of the golden tests and of the
//!   `casted-difftest` differential logs.
//! * [`codec`] — varint + length-prefixed-frame wire primitives used
//!   by the `casted-serve` binary protocol (see `docs/SERVING.md`).
//! * [`poll`] — a readiness-polling (`epoll`) wrapper over raw
//!   syscalls, the engine of `casted-serve`'s event-driven connection
//!   layer; stubs out to `Unsupported` off Linux so callers fall back
//!   to a readiness-thread model at runtime.
//! * [`store`] — the on-disk content-addressed artifact store of the
//!   staged compile pipeline (checksummed envelopes, atomic writes,
//!   shared LRU byte budget — see `docs/PIPELINE.md`).
//!
//! Its sibling `casted-obs` follows the same zero-dependency rule for
//! observability (replacing `metrics`/`tracing`): atomic counters,
//! ns-histograms, span timers and JSON/CSV export, disabled by
//! default — see `docs/OBSERVABILITY.md`. It lives in its own crate,
//! below everything, so any layer (including this one's `pool` users)
//! can record without a dependency cycle.

pub mod bench;
pub mod codec;
pub mod hash;
pub mod poll;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod store;

pub use hash::Fnv64;
pub use pool::{run_pool, Mutex};
pub use rng::Rng;
