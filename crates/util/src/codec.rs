//! Wire codec primitives — varints and length-prefixed frames.
//!
//! `casted-serve` speaks a binary protocol over TCP; the encoding
//! building blocks live here, next to the other zero-dependency
//! foundations, so the protocol layer and any future wire format share
//! one audited implementation:
//!
//! * **Unsigned varints** ([`put_uvarint`]/[`get_uvarint`]) — LEB128,
//!   at most 10 bytes for a `u64`.
//! * **Signed varints** ([`put_ivarint`]/[`get_ivarint`]) — zigzag
//!   mapping over the unsigned form, so small negative numbers stay
//!   small on the wire.
//! * **Byte strings** ([`put_bytes`]/[`get_bytes`],
//!   [`put_str`]/[`get_str`]) — varint length followed by the raw
//!   bytes, with a caller-supplied bound so a corrupt length can never
//!   force a huge allocation.
//! * **Frames** ([`write_frame`]/[`read_frame`]) — a fixed 4-byte
//!   little-endian `u32` length prefix followed by the payload.
//!   Oversized lengths are rejected *before* any allocation
//!   (`InvalidData`); a connection that dies mid-frame surfaces as
//!   `UnexpectedEof`, never as a short, silently-truncated payload.
//!
//! Everything here is deterministic: the same value always encodes to
//! the same bytes, which is what lets `casted-serve` use the encoded
//! request itself as a content-addressed cache key.

use std::io::{self, Read, Write};

/// Maximum encoded size of a `u64` varint.
pub const MAX_UVARINT_LEN: usize = 10;

/// Append `v` to `buf` as a LEB128 unsigned varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode a LEB128 unsigned varint from `bytes` at `*pos`, advancing
/// `*pos` past it. Strictly canonical: returns `None` on truncation,
/// on overflow past [`MAX_UVARINT_LEN`] bytes, and on any non-minimal
/// encoding (a terminating byte of `0x00` after a continuation, e.g.
/// `80 00` for zero). Strictness means decode∘encode is the identity
/// on byte strings, not just on values — the invariant the
/// content-addressed cache key in `casted-serve` relies on.
pub fn get_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for i in 0..MAX_UVARINT_LEN {
        let byte = *bytes.get(*pos + i)?;
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only carry the single remaining bit.
        if i == MAX_UVARINT_LEN - 1 && payload > 1 {
            return None;
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            // A zero terminating byte after a continuation byte is an
            // over-long (non-minimal) encoding.
            if i > 0 && payload == 0 {
                return None;
            }
            *pos += i + 1;
            return Some(v);
        }
    }
    None
}

/// Zigzag-map a signed value so small magnitudes encode short.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` to `buf` as a zigzag signed varint.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Decode a zigzag signed varint.
pub fn get_ivarint(bytes: &[u8], pos: &mut usize) -> Option<i64> {
    get_uvarint(bytes, pos).map(unzigzag)
}

/// Append a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_uvarint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Decode a length-prefixed byte string of at most `max_len` bytes.
/// The bound is checked against the *remaining input* before any copy,
/// so a corrupt length cannot trigger a large allocation.
pub fn get_bytes<'a>(bytes: &'a [u8], pos: &mut usize, max_len: usize) -> Option<&'a [u8]> {
    let len = get_uvarint(bytes, pos)?;
    if len > max_len as u64 || *pos + len as usize > bytes.len() {
        return None;
    }
    let out = &bytes[*pos..*pos + len as usize];
    *pos += len as usize;
    Some(out)
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Decode a length-prefixed UTF-8 string (`None` on invalid UTF-8).
pub fn get_str<'a>(bytes: &'a [u8], pos: &mut usize, max_len: usize) -> Option<&'a str> {
    std::str::from_utf8(get_bytes(bytes, pos, max_len)?).ok()
}

/// Write one frame: 4-byte little-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over 4 GiB"))?;
    // Prefix and payload go out in a single write: one syscall per
    // frame on an unbuffered stream, and no torn prefix/payload
    // interleaving when two threads share a socket.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame of at most `max_len` payload bytes.
///
/// * `Ok(None)` — clean end of stream (EOF exactly at a frame
///   boundary, i.e. the peer closed between requests).
/// * `Err(UnexpectedEof)` — the stream died mid-frame (truncated
///   length prefix or truncated payload).
/// * `Err(InvalidData)` — the length prefix exceeds `max_len`; nothing
///   is allocated or consumed past the prefix.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max_len}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame payload",
            )
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn uvarint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert!(buf.len() <= MAX_UVARINT_LEN);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len(), "decoder must consume exactly what was written");
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overlong() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
        // 10 continuation bytes never terminate; 10th byte with too
        // many payload bits overflows.
        let mut pos = 0;
        assert_eq!(get_uvarint(&[0x80; 10], &mut pos), None);
        let mut overlong = vec![0xff; 9];
        overlong.push(0x02); // bit 64 set
        let mut pos = 0;
        assert_eq!(get_uvarint(&overlong, &mut pos), None);
        // Non-minimal encodings of small values are rejected too.
        for enc in [&[0x80, 0x00][..], &[0x81, 0x00][..], &[0xff, 0x80, 0x00][..]] {
            let mut pos = 0;
            assert_eq!(get_uvarint(enc, &mut pos), None, "{enc:02x?}");
        }
    }

    #[test]
    fn ivarint_round_trips_and_keeps_small_negatives_short() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_ivarint(&buf, &mut pos), Some(v));
        }
        let mut buf = Vec::new();
        put_ivarint(&mut buf, -2);
        assert_eq!(buf.len(), 1, "zigzag must keep -2 to one byte");
    }

    #[test]
    fn bytes_and_str_round_trip_with_bound() {
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(get_str(&buf, &mut pos, 64), Some("héllo"));
        assert_eq!(get_bytes(&buf, &mut pos, 64), Some(&[1u8, 2, 3][..]));
        assert_eq!(pos, buf.len());
        // A bound below the encoded length rejects without reading.
        let mut pos = 0;
        assert_eq!(get_bytes(&buf, &mut pos, 2), None);
        // A length prefix pointing past the input rejects too.
        let mut corrupt = Vec::new();
        put_uvarint(&mut corrupt, 1000);
        let mut pos = 0;
        assert_eq!(get_bytes(&corrupt, &mut pos, 1 << 20), None);
    }

    #[test]
    fn get_str_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut pos = 0;
        assert_eq!(get_str(&buf, &mut pos, 64), None);
    }

    #[test]
    fn frame_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload one").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b"payload one"[..]));
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 64).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn frame_rejects_oversized_length_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut Cursor::new(wire), 1 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_truncation_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        for cut in 1..wire.len() {
            let err = read_frame(&mut Cursor::new(&wire[..cut]), 64).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }
}
