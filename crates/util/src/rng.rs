//! Deterministic, seedable random numbers: SplitMix64 for seeding and
//! xoshiro256++ for the main stream.
//!
//! ## Stability contract
//!
//! The sequence of values produced by [`Rng::seed_from_u64`] followed
//! by any documented sequence of draws is **frozen**: it is part of
//! the reproducibility contract of the fault-injection campaigns
//! (same seed → byte-identical injection sites on every platform and
//! toolchain). Golden-value tests below pin the stream; do not change
//! the algorithms or the bounded-draw mapping without bumping the
//! campaign format version everywhere it is documented.
//!
//! Algorithms are the public-domain reference constructions of
//! Blackman & Vigna (<https://prng.di.unimi.it/>):
//!
//! * SplitMix64: `z = (s += 0x9E3779B97F4A7C15)`, then two xor-shift
//!   multiplies. Used to expand a 64-bit seed into the 256-bit
//!   xoshiro state so that similar seeds give unrelated streams.
//! * xoshiro256++: rotl(s0 + s3, 23) + s0 output function over a
//!   linear-engine state update.
//!
//! Bounded draws use the widening-multiply mapping
//! `(x * n) >> 64` (Lemire), whose bias is at most `n / 2^64` —
//! negligible for every `n` in this workspace and, crucially,
//! identical on every platform.

/// SplitMix64: a tiny splittable generator used for state expansion.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed. Every seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's general-purpose deterministic RNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 expansion (the reference-recommended way to
    /// initialise xoshiro from a single word). All seeds are valid:
    /// SplitMix64 cannot produce the all-zero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit value (xoshiro256++ output function + engine step).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n`. `n = 0` is an error in the caller; we
    /// treat it as the full 64-bit range to stay total.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return self.next_u64();
        }
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform value in a range, `rand`-style: accepts `a..b` and
    /// `a..=b` over the common integer types.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Biased coin: `true` with probability `p` (clamped to 0..=1).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random mantissa bits → uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffle (from the back, as in `rand`).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // span = hi - lo + 1; wraps to 0 for the full domain,
                // which `below` maps to an unbounded draw — correct.
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize, i64, i32, u8);

#[cfg(test)]
mod tests {
    use super::*;

    /// Published reference vector: the first SplitMix64 outputs for
    /// seed 0 (cross-checked against the Vigna reference C code).
    #[test]
    fn splitmix64_matches_reference() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    /// Golden vectors for the full seed→stream pipeline
    /// (SplitMix64 expansion + xoshiro256++). The seed-0 value matches
    /// the `rand_xoshiro` crate's published `seed_from_u64(0)` test
    /// vector, cross-validating the construction; the rest freeze the
    /// stream this workspace's campaigns are built on. Regenerate with
    /// `cargo run -p casted-util --example golden_gen` — but changing
    /// these is a reproducibility format break (see module docs).
    #[test]
    fn xoshiro_stream_is_frozen() {
        let mut r = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..6).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x53175D61490B23DF,
                0x61DA6F3DC380D507,
                0x5C0FDF91EC9A7BFC,
                0x02EEBF8C3BBE5E1A,
                0x7ECA04EBAF4A5EEA,
                0x0543C37757F08D9A,
            ]
        );
        // The default campaign seed (0xCA57ED, see casted-faults).
        let mut r = Rng::seed_from_u64(0xCA57ED);
        let got: Vec<u64> = (0..6).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x02A25E4D4FC35EF8,
                0x34BFE10D7DA6DE73,
                0xD86506DF429237C4,
                0x9AEEA71C45E93144,
                0x70DE15936DD820F6,
                0xFEC4A666FD35871A,
            ]
        );
    }

    #[test]
    fn seeds_are_decorrelated() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let z = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_domain_inclusive_range_is_total() {
        let mut r = Rng::seed_from_u64(9);
        // span wraps to 0 → unbounded draw; must not panic.
        let _ = r.gen_range(0u64..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(5).shuffle(&mut a);
        Rng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut r = Rng::seed_from_u64(42);
        let mut c = r.clone();
        for _ in 0..100 {
            assert_eq!(r.next_u64(), c.next_u64());
        }
    }
}
