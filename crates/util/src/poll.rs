//! Readiness polling — a thin `epoll` wrapper for event-driven I/O.
//!
//! `casted-serve`'s connection layer is event-driven: one thread owns
//! every socket, sleeps in the kernel until something is actually
//! readable/writable, and never spins or `thread::sleep`-polls. The
//! workspace is hermetic (no `libc`, no `mio`), so the `epoll` calls
//! are made directly via raw syscalls with `core::arch::asm!` on the
//! two Linux architectures the project targets (x86_64, aarch64).
//!
//! On any other target [`Poller::new`] returns
//! [`std::io::ErrorKind::Unsupported`] and callers fall back to a
//! portable readiness-**thread** model (in `casted-serve` that is the
//! thread-per-connection path, which doubles as the bench baseline) —
//! the fallback is selected at runtime, so one binary builds
//! everywhere.
//!
//! ## Model
//!
//! * Sockets are registered **level-triggered** under a caller-chosen
//!   `u64` token with a read/write [`Interest`].
//! * [`Poller::wait`] blocks until at least one registered socket is
//!   ready (or the timeout expires) and appends [`Event`]s.
//! * A [`Notifier`] (a `UnixStream` pair registered internally) wakes
//!   `wait` from any thread — the worker-pool → event-loop reply path.
//!   Wakeups are drained inside `wait` and never surface as events.
//!
//! Level-triggered readiness keeps the state machine simple: a socket
//! with unread bytes keeps reporting readable, so a short read never
//! strands data, and write interest is only registered while a
//! connection has queued output (otherwise `EPOLLOUT` would
//! busy-report on every idle socket).

/// What readiness to watch a socket for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interest {
    /// Readable only (the steady state of an idle connection).
    Read,
    /// Readable + writable (a connection with queued output).
    ReadWrite,
}

/// One readiness event from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the socket was registered under.
    pub token: u64,
    /// Socket has bytes to read (or a pending accept).
    pub readable: bool,
    /// Socket can accept more output.
    pub writable: bool,
    /// Peer closed or the socket errored; the connection is dead
    /// either way — read until EOF and drop it.
    pub closed: bool,
}

/// Is the event-driven backend compiled in for this target?
pub fn available() -> bool {
    sys::AVAILABLE
}

pub use sys::{Notifier, Poller};

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    pub(super) const AVAILABLE: bool = true;

    // ---- raw syscalls (no libc in a hermetic workspace) -----------

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    // The kernel packs `epoll_event` on x86_64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0x80000;

    /// Reserved token for the internal wakeup pipe; never surfaced.
    const NOTIFY_TOKEN: u64 = u64::MAX;

    /// An epoll instance plus the internal wakeup pair.
    pub struct Poller {
        epfd: RawFd,
        /// Read end of the wakeup pair (drained inside `wait`).
        wake_rx: UnixStream,
        /// Write end, cloned into [`Notifier`]s.
        wake_tx: UnixStream,
    }

    /// Wakes a [`Poller::wait`] from any thread.
    #[derive(Clone, Debug)]
    pub struct Notifier {
        tx: std::sync::Arc<UnixStream>,
    }

    impl Notifier {
        /// Wake the poller. A full pipe means a wakeup is already
        /// pending, which is all a wakeup means — safe to ignore.
        pub fn notify(&self) {
            use std::io::Write;
            let _ = (&*self.tx).write(&[1u8]);
        }
    }

    fn interest_bits(i: Interest) -> u32 {
        match i {
            Interest::Read => EPOLLIN | EPOLLRDHUP,
            Interest::ReadWrite => EPOLLIN | EPOLLOUT | EPOLLRDHUP,
        }
    }

    impl Poller {
        /// Create an epoll instance with an internal wakeup channel.
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe {
                syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0)
            })? as RawFd;
            let poller = |epfd| -> io::Result<Poller> {
                let (wake_rx, wake_tx) = UnixStream::pair()?;
                wake_rx.set_nonblocking(true)?;
                wake_tx.set_nonblocking(true)?;
                let p = Poller { epfd, wake_rx, wake_tx };
                p.ctl(EPOLL_CTL_ADD, p.wake_rx.as_raw_fd(), EPOLLIN, NOTIFY_TOKEN)?;
                Ok(p)
            };
            poller(epfd).map_err(|e| {
                unsafe { syscall6(nr::CLOSE, epfd as usize, 0, 0, 0, 0, 0) };
                e
            })
        }

        /// A cloneable handle that wakes [`Poller::wait`].
        pub fn notifier(&self) -> io::Result<Notifier> {
            Ok(Notifier {
                tx: std::sync::Arc::new(self.wake_tx.try_clone()?),
            })
        }

        fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let ev = EpollEvent { events, data: token };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    &ev as *const EpollEvent as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        /// Register a socket under `token` with `interest`.
        pub fn add(&self, sock: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, sock.as_raw_fd(), interest_bits(interest), token)
        }

        /// Change a registered socket's interest (e.g. enable write
        /// readiness while output is queued).
        pub fn modify(&self, sock: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, sock.as_raw_fd(), interest_bits(interest), token)
        }

        /// Deregister a socket. Dropping the socket also deregisters
        /// it, but an explicit remove keeps stale events out of the
        /// queue when the fd number is about to be reused.
        pub fn remove(&self, sock: &impl AsRawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, sock.as_raw_fd(), 0, 0)
        }

        /// Block until a registered socket is ready or `timeout`
        /// expires (`None` = forever); append events to `out`.
        /// Internal wakeups are drained and not reported — a wakeup
        /// with no other ready socket returns with `out` unchanged.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let timeout_ms: isize = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as isize,
            };
            let n = loop {
                let ret = unsafe {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        self.epfd as usize,
                        buf.as_mut_ptr() as usize,
                        buf.len(),
                        timeout_ms as usize,
                        0, // no sigmask
                        8, // sigsetsize
                    )
                };
                match check(ret) {
                    Ok(n) => break n,
                    // Interrupted by a signal: retry (the caller's
                    // timeout semantics stay approximate, which is all
                    // the serve loop needs).
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let token = ev.data;
                if token == NOTIFY_TOKEN {
                    // Drain the wakeup pipe; its only job was to
                    // interrupt the kernel sleep.
                    use std::io::Read;
                    let mut sink = [0u8; 64];
                    while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                    continue;
                }
                let bits = ev.events;
                out.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0) };
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    pub(super) const AVAILABLE: bool = false;

    /// Stub poller for targets without the epoll backend; construction
    /// fails with [`io::ErrorKind::Unsupported`] and callers take the
    /// portable readiness-thread path instead.
    pub struct Poller {
        _private: (),
    }

    /// Stub notifier (never constructed — [`Poller::new`] fails).
    #[derive(Clone, Debug)]
    pub struct Notifier {
        _private: (),
    }

    impl Notifier {
        /// No-op on the stub.
        pub fn notify(&self) {}
    }

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "event-driven polling is only available on Linux x86_64/aarch64",
        ))
    }

    impl Poller {
        /// Always fails on this target.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Unreachable on the stub (a `Poller` cannot be built).
        pub fn notifier(&self) -> io::Result<Notifier> {
            unsupported()
        }

        /// Unreachable on the stub.
        pub fn add<S>(&self, _sock: &S, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable on the stub.
        pub fn modify<S>(&self, _sock: &S, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable on the stub.
        pub fn remove<S>(&self, _sock: &S) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable on the stub.
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<()> {
            unsupported()
        }
    }
}

#[cfg(all(test, target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn backend_is_available_on_linux() {
        assert!(available());
    }

    #[test]
    fn listener_reports_readable_on_pending_accept() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(&listener, 7, Interest::Read).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(std::time::Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "no connection yet: {events:?}");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, Some(std::time::Duration::from_secs(5))).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending accept must surface as readable: {events:?}"
        );
    }

    #[test]
    fn stream_readable_writable_and_close_events() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.add(&server_side, 42, Interest::ReadWrite).unwrap();

        // A fresh socket is writable but not readable.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(std::time::Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 42).expect("event for stream");
        assert!(ev.writable && !ev.readable, "{ev:?}");

        // Bytes from the peer flip it readable (level-triggered: the
        // event repeats until the bytes are consumed).
        client.write_all(b"ping").unwrap();
        for _ in 0..2 {
            events.clear();
            poller.wait(&mut events, Some(std::time::Duration::from_secs(5))).unwrap();
            assert!(events.iter().any(|e| e.token == 42 && e.readable), "{events:?}");
        }
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Peer close surfaces as a closed event.
        drop(client);
        events.clear();
        poller.wait(&mut events, Some(std::time::Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.closed), "{events:?}");
    }

    #[test]
    fn write_interest_is_togglable() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        poller.add(&server_side, 1, Interest::Read).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(std::time::Duration::from_millis(50))).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 1 && e.writable),
            "read-only interest must not report writable: {events:?}"
        );

        poller.modify(&server_side, 1, Interest::ReadWrite).unwrap();
        events.clear();
        poller.wait(&mut events, Some(std::time::Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable), "{events:?}");

        poller.remove(&server_side).unwrap();
        events.clear();
        poller.wait(&mut events, Some(std::time::Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "removed socket must be silent: {events:?}");
    }

    #[test]
    fn notifier_wakes_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let notifier = poller.notifier().unwrap();
        let start = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            notifier.notify();
        });
        let mut events = Vec::new();
        // Without the wakeup this would sleep the full 10 s.
        poller.wait(&mut events, Some(std::time::Duration::from_secs(10))).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        assert!(events.is_empty(), "wakeups are internal: {events:?}");
        handle.join().unwrap();
    }
}
