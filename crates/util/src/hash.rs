//! FNV-1a digests — the workspace's shared fingerprint for golden
//! tests and differential-testing logs.
//!
//! One algorithm, used everywhere a test pins "this exact output":
//! the workload golden-stream snapshots, the generator's golden
//! module hash, and the per-case digests `casted-difftest` prints in
//! its deterministic logs. Sharing the construction means a digest
//! printed by one harness can be compared directly against a value
//! pinned by another.
//!
//! FNV-1a (64-bit) is not cryptographic; it is chosen for being
//! trivially portable, dependency-free and stable across platforms —
//! the same properties the frozen RNG stream contract (see
//! [`crate::rng`]) guarantees for random draws.

/// Streaming 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorb a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorb a 64-bit word (little-endian byte order, so digests are
    /// identical on every platform).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a 64-bit word in a **single avalanched round**: the word
    /// is diffused through a splitmix64-style finalizer, then absorbed
    /// with one FNV round. This is a deliberate departure from
    /// byte-exact FNV-1a, for two reasons:
    ///
    /// * **throughput** — the checkpoint engine's state fingerprints
    ///   hash tens of thousands of words per sample, and one mix +
    ///   multiply beats eight byte rounds several times over;
    /// * **high-bit diffusion** — plain FNV moves input differences
    ///   only *upward* (multiplication by an odd constant preserves
    ///   the lowest set bit), so a difference confined to bits 62–63
    ///   stays in the top bits of the digest forever, and two such
    ///   differences can cancel exactly. A fault-injection bit flip
    ///   in bit 62/63 of two registers is precisely that shape. The
    ///   pre-mix spreads every input bit across the word first.
    ///
    /// Digests mixing this method are only comparable to digests
    /// built the same way — never to `write`/`write_u64` streams — so
    /// keep it out of any frozen-format hash.
    #[inline]
    pub fn write_u64_round(&mut self, v: u64) {
        let mut x = v;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        self.state ^= x;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Current digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot digest of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One-shot digest of a sequence of 64-bit words.
pub fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv64::new();
    for w in words {
        h.write_u64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a reference vectors (from the Noll reference
    /// tables): pin the construction itself.
    #[test]
    fn matches_published_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn word_digest_is_order_sensitive() {
        assert_ne!(fnv1a_words([1, 2]), fnv1a_words([2, 1]));
        assert_eq!(fnv1a_words([1, 2]), fnv1a_words([1, 2]));
    }

    #[test]
    fn word_rounds_diffuse_top_bits() {
        let digest = |vals: [u64; 2]| {
            let mut h = Fnv64::new();
            for v in vals {
                h.write_u64_round(v);
            }
            h.finish()
        };
        // Without the pre-mix, a difference confined to bit 62 or 63
        // of two absorbed words stays in the top bits and cancels
        // exactly — the failure mode a bit-flip fingerprint must not
        // have (two registers struck in the same high bit would hash
        // equal to the clean state).
        assert_ne!(digest([1 | 1 << 63, 2 | 1 << 63]), digest([1, 2]));
        assert_ne!(digest([1 | 1 << 62, 2 | 1 << 62]), digest([1, 2]));
    }
}
