//! FNV-1a digests — the workspace's shared fingerprint for golden
//! tests and differential-testing logs.
//!
//! One algorithm, used everywhere a test pins "this exact output":
//! the workload golden-stream snapshots, the generator's golden
//! module hash, and the per-case digests `casted-difftest` prints in
//! its deterministic logs. Sharing the construction means a digest
//! printed by one harness can be compared directly against a value
//! pinned by another.
//!
//! FNV-1a (64-bit) is not cryptographic; it is chosen for being
//! trivially portable, dependency-free and stable across platforms —
//! the same properties the frozen RNG stream contract (see
//! [`crate::rng`]) guarantees for random draws.

/// Streaming 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorb a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorb a 64-bit word (little-endian byte order, so digests are
    /// identical on every platform).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Current digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot digest of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One-shot digest of a sequence of 64-bit words.
pub fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv64::new();
    for w in words {
        h.write_u64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a reference vectors (from the Noll reference
    /// tables): pin the construction itself.
    #[test]
    fn matches_published_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn word_digest_is_order_sensitive() {
        assert_ne!(fnv1a_words([1, 2]), fnv1a_words([2, 1]));
        assert_eq!(fnv1a_words([1, 2]), fnv1a_words([1, 2]));
    }
}
