//! Wall-clock bench runner for `harness = false` bench targets — the
//! replacement for `criterion`.
//!
//! Each benchmark is warmed up, then timed for a fixed number of
//! samples; the report shows the per-iteration **median** and **MAD**
//! (median absolute deviation), which are robust to scheduler noise.
//! The API deliberately mirrors the subset of criterion the workspace
//! used, so bench targets read the same:
//!
//! ```no_run
//! use casted_util::bench::{Bench, BenchId};
//! use casted_util::{bench_group, bench_main};
//!
//! fn my_bench(c: &mut Bench) {
//!     let mut g = c.benchmark_group("group");
//!     g.sample_size(10);
//!     g.bench_with_input(BenchId::from_parameter("case"), &42, |b, &x| {
//!         b.iter(|| x * 2)
//!     });
//!     g.finish();
//! }
//!
//! bench_group!(benches, my_bench);
//! bench_main!(benches);
//! ```
//!
//! CLI: the first non-flag argument is a substring filter (cargo
//! passes `--bench` and friends, which are ignored). Set
//! `CASTED_BENCH_QUICK=1` to run a single sample per benchmark — used
//! by CI smoke runs where only "does every bench path execute"
//! matters.

use std::time::{Duration, Instant};

/// Re-export: defeat the optimiser on inputs/outputs inside `iter`.
pub use std::hint::black_box;

/// Target wall-clock time for one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Warmup budget before sampling starts.
const WARMUP: Duration = Duration::from_millis(150);

/// A benchmark identifier, shown as the case name inside a group.
pub struct BenchId(String);

impl BenchId {
    /// Criterion-style constructor from any displayable parameter.
    pub fn from_parameter<D: std::fmt::Display>(p: D) -> Self {
        BenchId(p.to_string())
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, `iters` times back to back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level runner: holds the CLI filter and run options.
pub struct Bench {
    filter: Option<String>,
    quick: bool,
    default_samples: usize,
    ran: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            filter: None,
            quick: false,
            default_samples: 10,
            ran: 0,
        }
    }
}

impl Bench {
    /// Build from `std::env` (CLI args + `CASTED_BENCH_QUICK`).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        let quick = std::env::var("CASTED_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        Bench {
            filter,
            quick,
            default_samples: 10,
            ran: 0,
        }
    }

    /// Called by [`bench_main!`] after all groups ran: if a filter
    /// matched nothing, say so instead of exiting silently.
    pub fn report_if_empty(&self) {
        if self.ran == 0 {
            if let Some(f) = &self.filter {
                eprintln!("warning: filter {f:?} matched no benchmarks in this target");
            }
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let samples = self.default_samples;
        self.run_one(name, samples, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        // Warmup + calibration: run single iterations until the warmup
        // budget is spent, tracking the fastest observed time.
        let mut best = Duration::MAX;
        let warmup_start = Instant::now();
        loop {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            best = best.min(b.elapsed.max(Duration::from_nanos(1)));
            if warmup_start.elapsed() >= WARMUP || self.quick {
                break;
            }
        }
        let iters = (TARGET_SAMPLE.as_nanos() / best.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let samples = if self.quick { 1 } else { samples.max(3) };

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        let (median, mad) = median_mad(&mut per_iter);
        println!(
            "bench {name:<50} median {:>10}  mad {:>9}  (n={samples}, {iters} iter/sample)",
            fmt_ns(median),
            fmt_ns(mad),
        );
    }
}

/// A named group; mirrors `criterion::BenchmarkGroup`.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: Option<usize>,
}

impl Group<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.bench.default_samples);
        self.bench.run_one(&full, samples, |b| f(b, input));
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.bench.default_samples);
        self.bench.run_one(&full, samples, f);
        self
    }

    /// End the group (kept for criterion API parity; no-op).
    pub fn finish(self) {}
}

/// Median and median-absolute-deviation of a sample set. Public so
/// bench targets that do their own sampling (e.g. campaign
/// throughput, where the metric is trials/sec rather than ns/iter)
/// report the same robust statistics as the runner.
pub fn median_mad(xs: &mut [f64]) -> (f64, f64) {
    let med = median(xs);
    let mut devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    (med, median(&mut devs))
}

fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Human-readable nanosecond quantity.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a bench group function from benchmark functions
/// (`criterion_group!` parity).
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::bench::Bench) {
            $($f(c);)+
        }
    };
}

/// Define `main` running the given groups (`criterion_main!` parity).
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Bench::from_args();
            $($group(&mut c);)+
            c.report_if_empty();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        let mut xs = vec![10.0, 11.0, 9.0, 10.0, 1000.0];
        let (med, mad) = median_mad(&mut xs);
        assert_eq!(med, 10.0);
        assert_eq!(mad, 1.0);
    }

    #[test]
    fn formatting_picks_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn runner_respects_filter_and_runs_matches() {
        let mut c = Bench {
            filter: Some("yes".into()),
            quick: true,
            default_samples: 3,
            ran: 0,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("yes_one", |b| {
                ran.push("yes_one");
                b.iter(|| 1 + 1)
            });
        }
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("no_one", |b| {
                ran.push("no_one");
                b.iter(|| 1 + 1)
            });
        }
        // Warmup + sampling both invoke the closure; only the
        // filter-matching benchmark may appear.
        assert!(!ran.is_empty());
        assert!(ran.iter().all(|n| *n == "yes_one"), "{ran:?}");
    }

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO);
    }
}
