//! Scoped worker pool on std threads — the replacement for
//! `crossbeam::scope` + `parking_lot` in the experiment sweeps.
//!
//! [`run_pool`] executes a batch of closures on
//! `available_parallelism` threads (work-stealing via a shared atomic
//! cursor) and returns their results in input order. Panics in worker
//! closures propagate to the caller when the scope joins, exactly as
//! the crossbeam version did.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A `parking_lot`-flavoured wrapper over [`std::sync::Mutex`]:
/// `lock()` needs no `unwrap()` and never deadlocks on poisoning —
/// a poisoned lock (a panicking worker) simply yields the inner data,
/// since panic propagation is handled by the thread scope itself.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Worker count: the host's available parallelism, at least 1.
pub fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `tasks` on a scoped pool, returning results in input order.
///
/// Threads pull task indices from a shared cursor, so long tasks do
/// not serialise behind short ones. If any task panics, the panic is
/// re-raised here (after all threads have stopped) — no result is
/// silently dropped.
pub fn run_pool<T: Send, F>(tasks: Vec<F>) -> Vec<T>
where
    F: Fn() -> T + Send + Sync,
{
    let n = tasks.len();
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let threads = pool_threads().min(n.max(1));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = tasks[i]();
                results.lock()[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("task not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_all_jobs_in_order() {
        let tasks: Vec<_> = (0..257)
            .map(|i| move || i * i)
            .collect();
        let out = run_pool(tasks);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = run_pool(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_task_runs_without_extra_threads() {
        let out = run_pool(vec![|| 41 + 1]);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let res = std::panic::catch_unwind(|| {
            run_pool(
                (0..16)
                    .map(|i| {
                        move || {
                            if i == 7 {
                                panic!("task 7 exploded");
                            }
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        });
        assert!(res.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn mutex_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
