//! Minimal property-testing harness — the replacement for `proptest`
//! in the `prop_*.rs` test files.
//!
//! No strategies and no shrinking: each case gets a fresh [`Rng`]
//! seeded from a per-case SplitMix64 stream, and the property draws
//! whatever inputs it needs (`rng.gen_range(..)`, `rng.next_u64()`).
//! A failing case panics with the *case seed*, which can be replayed
//! in isolation with [`run_seed`].
//!
//! ```
//! use casted_util::prop;
//!
//! prop::run_cases("addition_commutes", 64, |rng| {
//!     let (a, b) = (rng.next_u64(), rng.next_u64());
//!     casted_util::prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     Ok(())
//! });
//! ```

use crate::rng::{Rng, SplitMix64};

/// Base seed for the per-case seed stream. Changing it re-rolls every
/// property-test input in the workspace.
pub const BASE_SEED: u64 = 0xCA57_ED00;

/// Canonical replay-seed token: `seed=0x<16 hex digits>`.
///
/// This is the **one** format every harness in the workspace prints
/// and parses — property-test failures (via [`run_cases`]) and the
/// `casted-difftest` differential fuzzer's `REPLAY` lines both emit
/// it, so a seed copied from any failure message can be pasted into
/// either replay entry point (`run_seed` here, `difftest --replay`
/// there) unchanged.
pub fn seed_token(seed: u64) -> String {
    format!("seed={seed:#018x}")
}

/// Parse a [`seed_token`] (`seed=0x...`; bare `0x...` and decimal
/// values are accepted too, for hand-typed seeds).
pub fn parse_seed_token(s: &str) -> Option<u64> {
    let s = s.trim();
    let s = s.strip_prefix("seed=").unwrap_or(s);
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Run `cases` independent cases of a property. The property returns
/// `Err(message)` (usually via the `prop_assert*` macros) to fail.
///
/// Panics on the first failing case, reporting the property name, the
/// case index and the case seed for replay.
pub fn run_cases<F>(name: &str, cases: u32, mut property: F)
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    let mut seeds = SplitMix64::new(BASE_SEED);
    for case in 0..cases {
        let case_seed = seeds.next_u64();
        let mut rng = Rng::seed_from_u64(case_seed);
        if let Err(msg) = property(&mut rng) {
            panic!(
                "property '{name}' failed on case {case}/{cases}\n\
                 REPLAY {token} (casted_util::prop::run_seed, or paste the \
                 token into `difftest --replay`)\n{msg}",
                token = seed_token(case_seed)
            );
        }
    }
}

/// Replay a single case by its seed (as printed by a failure).
pub fn run_seed<F>(case_seed: u64, mut property: F)
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    let mut rng = Rng::seed_from_u64(case_seed);
    if let Err(msg) = property(&mut rng) {
        panic!("case {case_seed:#018x} failed:\n{msg}");
    }
}

/// Fail the property unless `cond` holds. Optional format arguments
/// add context, `assert!`-style.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fail the property unless `a == b`, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                left,
                right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Fail the property unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return Err(format!(
                "assertion failed: {} != {} ({}:{})\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                left
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return Err(format!(
                "assertion failed: {} != {} ({}:{}): {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                format!($($fmt)+),
                left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run_cases("counts", 17, |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn cases_get_distinct_seeds() {
        let mut first_draws = Vec::new();
        run_cases("distinct", 8, |rng| {
            first_draws.push(rng.next_u64());
            Ok(())
        });
        let mut uniq = first_draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), first_draws.len());
    }

    #[test]
    #[should_panic(expected = "property 'boom' failed")]
    fn failing_property_panics_with_name() {
        run_cases("boom", 4, |rng| {
            let v: u64 = rng.gen_range(0u64..10);
            prop_assert!(v > 100, "drew {v}");
            Ok(())
        });
    }

    #[test]
    fn seed_token_round_trips() {
        for seed in [0u64, 1, 0xCA57ED, u64::MAX] {
            let tok = seed_token(seed);
            assert!(tok.starts_with("seed=0x"), "{tok}");
            assert_eq!(parse_seed_token(&tok), Some(seed));
        }
        assert_eq!(parse_seed_token("0xCA57ED"), Some(0xCA57ED));
        assert_eq!(parse_seed_token("1234"), Some(1234));
        assert_eq!(parse_seed_token("seed=garbage"), None);
    }

    /// Every prop_*.rs failure message carries the canonical replay
    /// token, so one replay workflow covers both this harness and
    /// `difftest`.
    #[test]
    fn failure_message_contains_replay_token() {
        let msg = std::panic::catch_unwind(|| {
            run_cases("tokened", 2, |_| Err("boom".into()));
        })
        .unwrap_err();
        let msg = msg.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("REPLAY seed=0x"), "{msg}");
        let tok = msg
            .split_whitespace()
            .find(|w| w.starts_with("seed=0x"))
            .unwrap();
        assert!(parse_seed_token(tok).is_some(), "{tok}");
    }

    #[test]
    fn macros_report_both_sides() {
        fn check() -> Result<(), String> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        }
        let msg = check().unwrap_err();
        assert!(msg.contains("left: 2"), "{msg}");
        assert!(msg.contains("right: 3"), "{msg}");
    }
}
