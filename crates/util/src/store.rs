//! On-disk content-addressed artifact store for the staged compile
//! pipeline (see `docs/PIPELINE.md`).
//!
//! The store follows the discipline the fault-campaign section store
//! (`casted-faults::sections`) established: one file per artifact under
//! a flat directory, named `"{key:016x}.{kind}"`, an envelope that
//! echoes the format version, the key and the kind, a whole-file FNV-1a
//! checksum tail, strictly canonical decoding, and atomic temp+rename
//! writes. Any damage — a flipped byte, a truncation, a foreign or
//! out-of-date format — makes [`ArtifactStore::load`] return `None`: a
//! cache **miss**, never wrong bytes. The pipeline then recomputes the
//! stage and re-saves, healing the store in place.
//!
//! On top of that the store enforces a shared LRU byte budget across
//! all artifact kinds: an in-memory recency index is seeded from a
//! directory scan at open (ordered by file modification time) and
//! updated on every load/save; when a save pushes the resident total
//! over the budget, least-recently-used artifacts are deleted first.
//! The index is per-instance — concurrent processes sharing a
//! directory stay correct (atomic writes, self-verifying reads), they
//! just track recency independently.
//!
//! A bounded **in-memory front cache** sits over the disk layer:
//! artifacts are content-addressed and immutable, so a decoded payload
//! can be kept in a process-local map and served on repeat loads
//! without re-reading or re-checksumming the file. Long-lived hosts
//! (`casted-serve`) hit it on every hot compile stage;
//! [`ArtifactStore::load_traced`] reports which layer answered so
//! callers can count memory hits (`compile.stages.mem_hit`). The
//! front cache has its own LRU byte budget, independent of the disk
//! budget, and is write-through: a save lands in both layers.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{get_bytes, get_str, get_uvarint, put_bytes, put_str, put_uvarint};
use crate::hash::fnv1a;
use crate::pool::Mutex;

/// Bump on any incompatible change to the envelope layout. Stage
/// payload formats carry their own `STAGE_FORMAT_VERSION`s (mixed into
/// the artifact keys); this version covers only the envelope itself.
pub const STORE_FORMAT_VERSION: u64 = 1;

/// Upper bound on a decoded artifact payload (and kind string): keeps
/// a corrupted length field from asking the decoder to allocate the
/// address space.
const MAX_PAYLOAD: usize = 1 << 30;

/// Envelope: version, key echo, kind echo, payload, FNV-1a tail.
fn encode_envelope(key: u64, kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + kind.len() + 32);
    put_uvarint(&mut buf, STORE_FORMAT_VERSION);
    put_uvarint(&mut buf, key);
    put_str(&mut buf, kind);
    put_bytes(&mut buf, payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Strict inverse of [`encode_envelope`]; `None` on any damage.
fn decode_envelope(key: u64, kind: &str, bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a(payload) != stored {
        return None;
    }
    let mut pos = 0;
    if get_uvarint(payload, &mut pos)? != STORE_FORMAT_VERSION {
        return None;
    }
    if get_uvarint(payload, &mut pos)? != key {
        return None;
    }
    if get_str(payload, &mut pos, MAX_PAYLOAD)? != kind {
        return None;
    }
    let body = get_bytes(payload, &mut pos, MAX_PAYLOAD)?.to_vec();
    (pos == payload.len()).then_some(body)
}

struct LruEntry {
    seq: u64,
    size: u64,
}

struct Lru {
    next_seq: u64,
    entries: HashMap<String, LruEntry>,
    total: u64,
}

/// Which cache layer answered an [`ArtifactStore::load_traced`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadSource {
    /// Served from the in-process front cache — no file I/O, no
    /// checksum re-verification.
    Memory,
    /// Read and integrity-checked from the on-disk store.
    Disk,
}

struct MemEntry {
    seq: u64,
    payload: Vec<u8>,
}

struct MemCache {
    next_seq: u64,
    entries: HashMap<(String, u64), MemEntry>,
    total: u64,
}

/// Default in-memory front-cache budget: enough for the hot stage
/// artifacts of thousands of distinct programs, small next to the
/// serve reply cache's 32 MiB default.
pub const DEFAULT_MEM_BUDGET: u64 = 16 << 20;

/// The content-addressed artifact store. Cheap to share by reference
/// across threads (the recency index is behind a mutex; file I/O is
/// lock-free).
pub struct ArtifactStore {
    dir: PathBuf,
    budget: u64,
    lru: Mutex<Lru>,
    mem_budget: u64,
    mem: Mutex<MemCache>,
}

impl ArtifactStore {
    /// Open (creating the directory if needed) with no byte budget.
    pub fn open(dir: &Path) -> io::Result<ArtifactStore> {
        ArtifactStore::open_with_budget(dir, u64::MAX)
    }

    /// Open with a shared LRU byte budget across all artifact kinds and
    /// the default in-memory front-cache budget.
    /// Existing files are indexed oldest-first by modification time, so
    /// eviction order survives a reopen.
    pub fn open_with_budget(dir: &Path, budget: u64) -> io::Result<ArtifactStore> {
        ArtifactStore::open_with_budgets(dir, budget, DEFAULT_MEM_BUDGET)
    }

    /// Open with explicit disk and memory budgets. A `mem_budget` of 0
    /// disables the front cache (every load re-reads disk).
    pub fn open_with_budgets(dir: &Path, budget: u64, mem_budget: u64) -> io::Result<ArtifactStore> {
        std::fs::create_dir_all(dir)?;
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = match entry {
                Ok(e) => e,
                Err(_) => continue,
            };
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            // Skip orphaned temp files and anything foreign.
            if name.starts_with('.') || !name.contains('.') {
                continue;
            }
            let meta = match entry.metadata() {
                Ok(m) => m,
                Err(_) => continue,
            };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((name, meta.len(), mtime));
        }
        // Oldest first; name breaks ties so the seed order is stable
        // even on filesystems with coarse mtimes.
        found.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut lru = Lru {
            next_seq: 0,
            entries: HashMap::with_capacity(found.len()),
            total: 0,
        };
        for (name, size, _) in found {
            let seq = lru.next_seq;
            lru.next_seq += 1;
            lru.total += size;
            lru.entries.insert(name, LruEntry { seq, size });
        }
        Ok(ArtifactStore {
            dir: dir.to_path_buf(),
            budget,
            lru: Mutex::new(lru),
            mem_budget,
            mem: Mutex::new(MemCache {
                next_seq: 0,
                entries: HashMap::new(),
                total: 0,
            }),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes currently indexed as resident.
    pub fn resident_bytes(&self) -> u64 {
        self.lru.lock().total
    }

    fn file_name(kind: &str, key: u64) -> String {
        format!("{key:016x}.{kind}")
    }

    fn path(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(Self::file_name(kind, key))
    }

    /// Bytes currently held by the in-memory front cache.
    pub fn mem_resident_bytes(&self) -> u64 {
        self.mem.lock().total
    }

    /// Look up `(kind, key)` in the in-memory front cache, refreshing
    /// its recency on a hit.
    fn mem_get(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        if self.mem_budget == 0 {
            return None;
        }
        let mut mem = self.mem.lock();
        let seq = mem.next_seq;
        mem.next_seq += 1;
        let entry = mem.entries.get_mut(&(kind.to_string(), key))?;
        entry.seq = seq;
        Some(entry.payload.clone())
    }

    /// Insert a payload into the front cache, evicting
    /// least-recently-used entries past the memory budget. Artifacts
    /// are immutable per key, so an existing entry is left alone.
    fn mem_put(&self, kind: &str, key: u64, payload: &[u8]) {
        if self.mem_budget == 0 || payload.len() as u64 > self.mem_budget {
            return;
        }
        let mut mem = self.mem.lock();
        let slot = (kind.to_string(), key);
        if mem.entries.contains_key(&slot) {
            return;
        }
        let seq = mem.next_seq;
        mem.next_seq += 1;
        mem.total += payload.len() as u64;
        mem.entries.insert(
            slot,
            MemEntry {
                seq,
                payload: payload.to_vec(),
            },
        );
        while mem.total > self.mem_budget {
            let victim = mem
                .entries
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone())
                .expect("over budget implies non-empty");
            if let Some(e) = mem.entries.remove(&victim) {
                mem.total -= e.payload.len() as u64;
            }
        }
    }

    /// Load and integrity-check the `kind` artifact stored under
    /// `key`. Any damage is a miss (`None`), never wrong bytes. A hit
    /// refreshes the artifact's LRU recency.
    pub fn load(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        self.load_traced(kind, key).map(|(payload, _)| payload)
    }

    /// [`ArtifactStore::load`], additionally reporting which layer
    /// answered — the in-process front cache or the on-disk store — so
    /// callers can meter memory hits.
    pub fn load_traced(&self, kind: &str, key: u64) -> Option<(Vec<u8>, LoadSource)> {
        if let Some(payload) = self.mem_get(kind, key) {
            return Some((payload, LoadSource::Memory));
        }
        let payload = self.load_disk(kind, key)?;
        self.mem_put(kind, key, &payload);
        Some((payload, LoadSource::Disk))
    }

    fn load_disk(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.path(kind, key)).ok()?;
        let payload = decode_envelope(key, kind, &bytes)?;
        let mut lru = self.lru.lock();
        let seq = lru.next_seq;
        lru.next_seq += 1;
        let name = Self::file_name(kind, key);
        match lru.entries.get_mut(&name) {
            Some(e) => e.seq = seq,
            None => {
                // Written by another process since open: adopt it.
                lru.total += bytes.len() as u64;
                lru.entries.insert(
                    name,
                    LruEntry {
                        seq,
                        size: bytes.len() as u64,
                    },
                );
            }
        }
        Some(payload)
    }

    /// Persist an artifact atomically (temp file + rename), then evict
    /// least-recently-used artifacts while the resident total exceeds
    /// the byte budget. The just-written artifact holds the highest
    /// recency, so it is evicted only if it alone exceeds the budget.
    pub fn save(&self, kind: &str, key: u64, payload: &[u8]) -> io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = encode_envelope(key, kind, payload);
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, self.path(kind, key))?;
        self.mem_put(kind, key, payload);

        let mut evict: Vec<String> = Vec::new();
        {
            let mut lru = self.lru.lock();
            let name = Self::file_name(kind, key);
            if let Some(old) = lru.entries.remove(&name) {
                lru.total -= old.size;
            }
            let seq = lru.next_seq;
            lru.next_seq += 1;
            lru.total += bytes.len() as u64;
            lru.entries.insert(
                name,
                LruEntry {
                    seq,
                    size: bytes.len() as u64,
                },
            );
            while lru.total > self.budget && !lru.entries.is_empty() {
                let victim = lru
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.seq)
                    .map(|(n, _)| n.clone())
                    .expect("non-empty");
                if let Some(e) = lru.entries.remove(&victim) {
                    lru.total -= e.size;
                }
                evict.push(victim);
            }
        }
        for name in evict {
            let _ = std::fs::remove_file(self.dir.join(name));
        }
        Ok(())
    }

    /// Delete every artifact written under a *different* envelope
    /// format version, reclaiming disk a version bump stranded: old
    /// envelopes would never hit again (the version check makes every
    /// load a miss) yet still count against the byte budget and crowd
    /// out live entries. Returns the number of files deleted.
    ///
    /// Only files whose checksum verifies and whose version field
    /// differs from [`STORE_FORMAT_VERSION`] are removed: a damaged
    /// file is indistinguishable from a half-written one and is left
    /// for the healing path (a fresh save overwrites it in place).
    /// Temp files and live-version artifacts are never touched.
    pub fn gc_stale_versions(&self) -> io::Result<usize> {
        let mut dropped: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") || !entry.file_type()?.is_file() {
                continue;
            }
            let Ok(bytes) = std::fs::read(entry.path()) else {
                continue;
            };
            if !envelope_version_is_stale(&bytes) {
                continue;
            }
            if std::fs::remove_file(entry.path()).is_ok() {
                dropped.push(name);
            }
        }
        let mut lru = self.lru.lock();
        let removed = dropped.len();
        for name in dropped {
            if let Some(e) = lru.entries.remove(&name) {
                lru.total -= e.size;
            }
        }
        Ok(removed)
    }
}

/// Does `bytes` hold an intact envelope from another format
/// generation? Damage (bad checksum, short file, unreadable varint)
/// is *not* stale — see [`ArtifactStore::gc_stale_versions`].
fn envelope_version_is_stale(bytes: &[u8]) -> bool {
    if bytes.len() < 8 {
        return false;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(payload) != stored {
        return false;
    }
    let mut pos = 0;
    match get_uvarint(payload, &mut pos) {
        Some(v) => v != STORE_FORMAT_VERSION,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "casted-artifact-store-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_by_kind_and_key() {
        let dir = temp_store_dir("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save("ir", 7, b"module bytes").unwrap();
        store.save("sched", 7, b"schedule bytes").unwrap();
        assert_eq!(store.load("ir", 7).unwrap(), b"module bytes");
        assert_eq!(store.load("sched", 7).unwrap(), b"schedule bytes");
        assert!(store.load("ir", 8).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_truncation_and_version_skew_are_misses() {
        let dir = temp_store_dir("sabotage");
        // Front cache off: this test exercises the disk integrity
        // layer, which a memory hit would (correctly) bypass.
        let store = ArtifactStore::open_with_budgets(&dir, u64::MAX, 0).unwrap();
        store.save("ed", 0xABCD, b"stage payload with some length").unwrap();
        let path = dir.join("000000000000abcd.ed");
        let clean = std::fs::read(&path).unwrap();

        // Flip one byte anywhere: the checksum must reject the file.
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 1;
            std::fs::write(&path, &bad).unwrap();
            assert!(store.load("ed", 0xABCD).is_none(), "flipped byte {i} accepted");
        }

        // Truncations at every length are misses too.
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(store.load("ed", 0xABCD).is_none(), "truncation to {cut} accepted");
        }

        // A record written under a different envelope version is a
        // miss even with a valid checksum.
        let mut skewed = Vec::new();
        put_uvarint(&mut skewed, STORE_FORMAT_VERSION + 1);
        put_uvarint(&mut skewed, 0xABCD);
        put_str(&mut skewed, "ed");
        put_bytes(&mut skewed, b"stage payload with some length");
        let sum = fnv1a(&skewed);
        skewed.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &skewed).unwrap();
        assert!(store.load("ed", 0xABCD).is_none());

        // Healing: a fresh save overwrites the damage and hits again.
        store.save("ed", 0xABCD, b"stage payload with some length").unwrap();
        assert_eq!(
            store.load("ed", 0xABCD).unwrap(),
            b"stage payload with some length"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_deletes_stale_versions_and_spares_live_entries() {
        let dir = temp_store_dir("gc");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save("ir", 1, b"live one").unwrap();
        store.save("sched", 2, b"live two").unwrap();
        let live_bytes = store.resident_bytes();

        // Two intact envelopes from the previous format generation.
        for (key, kind) in [(0x10u64, "ir"), (0x11u64, "ed")] {
            let mut old = Vec::new();
            put_uvarint(&mut old, STORE_FORMAT_VERSION + 1);
            put_uvarint(&mut old, key);
            put_str(&mut old, kind);
            put_bytes(&mut old, b"stranded payload");
            let sum = fnv1a(&old);
            old.extend_from_slice(&sum.to_le_bytes());
            std::fs::write(dir.join(ArtifactStore::file_name(kind, key)), &old).unwrap();
        }
        // One damaged file: bad checksum, must be left for healing.
        let damaged = dir.join(ArtifactStore::file_name("ra", 0x12));
        std::fs::write(&damaged, b"not an envelope at all").unwrap();

        // Re-open so the LRU index adopts the stranded files too.
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.resident_bytes() > live_bytes);
        assert_eq!(store.gc_stale_versions().unwrap(), 2);

        // Live entries survive, still load, and the index shrank back.
        assert_eq!(store.load("ir", 1).unwrap(), b"live one");
        assert_eq!(store.load("sched", 2).unwrap(), b"live two");
        assert!(store.load("ir", 0x10).is_none());
        assert!(!dir.join(ArtifactStore::file_name("ir", 0x10)).exists());
        assert!(!dir.join(ArtifactStore::file_name("ed", 0x11)).exists());
        assert!(damaged.exists(), "damaged file must be left for healing");

        // Second pass finds nothing more to do.
        assert_eq!(store.gc_stale_versions().unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_and_kind_echo_bind_the_artifact() {
        let dir = temp_store_dir("echo");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save("ir", 1, b"one").unwrap();
        // A file renamed to another key (or kind) must not be accepted
        // there: the envelope echoes both.
        std::fs::copy(dir.join(ArtifactStore::file_name("ir", 1)), dir.join(ArtifactStore::file_name("ir", 2)))
            .unwrap();
        std::fs::copy(dir.join(ArtifactStore::file_name("ir", 1)), dir.join(ArtifactStore::file_name("ed", 1)))
            .unwrap();
        assert!(store.load("ir", 2).is_none());
        assert!(store.load("ed", 1).is_none());
        assert_eq!(store.load("ir", 1).unwrap(), b"one");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_budget_evicts_least_recent_first() {
        let dir = temp_store_dir("lru");
        // Each envelope is payload + ~20 bytes of framing; a budget of
        // three-ish records keeps the arithmetic simple.
        let payload = [0u8; 100];
        // Front cache off so disk eviction is observable as a miss.
        let store = ArtifactStore::open_with_budgets(&dir, 400, 0).unwrap();
        store.save("a", 1, &payload).unwrap();
        store.save("a", 2, &payload).unwrap();
        store.save("a", 3, &payload).unwrap();
        assert!(store.load("a", 1).is_some());
        assert!(store.load("a", 2).is_some());
        assert!(store.load("a", 3).is_some());
        // Refresh 1 so 2 becomes the least-recent, then push over
        // budget: 2 must go, 1 and 3 must stay.
        assert!(store.load("a", 1).is_some());
        assert!(store.load("a", 3).is_some());
        store.save("a", 4, &payload).unwrap();
        assert!(store.load("a", 2).is_none(), "least-recent artifact survived");
        assert!(store.load("a", 1).is_some());
        assert!(store.load("a", 3).is_some());
        assert!(store.load("a", 4).is_some());
        assert!(store.resident_bytes() <= 400);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_front_cache_answers_repeat_loads() {
        let dir = temp_store_dir("mem-hit");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save("ir", 5, b"hot artifact").unwrap();
        // Write-through: the save already populated the front cache.
        let (payload, src) = store.load_traced("ir", 5).unwrap();
        assert_eq!(payload, b"hot artifact");
        assert_eq!(src, LoadSource::Memory);
        // Memory hits survive the disk layer vanishing entirely —
        // content-addressed artifacts are immutable, so the in-process
        // copy stays valid.
        std::fs::remove_dir_all(&dir).unwrap();
        let (payload, src) = store.load_traced("ir", 5).unwrap();
        assert_eq!(payload, b"hot artifact");
        assert_eq!(src, LoadSource::Memory);
        assert!(store.load("ir", 6).is_none());
    }

    #[test]
    fn mem_front_cache_promotes_disk_loads() {
        let dir = temp_store_dir("mem-promote");
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.save("ir", 9, b"persisted").unwrap();
        }
        // A fresh instance starts cold: first load reads disk, second
        // is a memory hit.
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(
            store.load_traced("ir", 9).unwrap(),
            (b"persisted".to_vec(), LoadSource::Disk)
        );
        assert_eq!(
            store.load_traced("ir", 9).unwrap(),
            (b"persisted".to_vec(), LoadSource::Memory)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_front_cache_respects_its_own_budget() {
        let dir = temp_store_dir("mem-budget");
        let payload = [7u8; 100];
        let store = ArtifactStore::open_with_budgets(&dir, u64::MAX, 250).unwrap();
        store.save("a", 1, &payload).unwrap();
        store.save("a", 2, &payload).unwrap();
        // Refresh 1, then push over the memory budget: 2 is evicted
        // from memory (but not from disk).
        assert_eq!(store.load_traced("a", 1).unwrap().1, LoadSource::Memory);
        store.save("a", 3, &payload).unwrap();
        assert!(store.mem_resident_bytes() <= 250);
        assert_eq!(store.load_traced("a", 2).unwrap().1, LoadSource::Disk);
        assert_eq!(store.load_traced("a", 3).unwrap().1, LoadSource::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_seeds_the_index_from_disk() {
        let dir = temp_store_dir("reopen");
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.save("ir", 10, b"ten").unwrap();
            store.save("ir", 11, b"eleven").unwrap();
        }
        let store = ArtifactStore::open_with_budget(&dir, u64::MAX).unwrap();
        assert!(store.resident_bytes() > 0);
        assert_eq!(store.load("ir", 10).unwrap(), b"ten");
        assert_eq!(store.load("ir", 11).unwrap(), b"eleven");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
