//! On-disk content-addressed artifact store for the staged compile
//! pipeline (see `docs/PIPELINE.md`).
//!
//! The store follows the discipline the fault-campaign section store
//! (`casted-faults::sections`) established: one file per artifact under
//! a flat directory, named `"{key:016x}.{kind}"`, an envelope that
//! echoes the format version, the key and the kind, a whole-file FNV-1a
//! checksum tail, strictly canonical decoding, and atomic temp+rename
//! writes. Any damage — a flipped byte, a truncation, a foreign or
//! out-of-date format — makes [`ArtifactStore::load`] return `None`: a
//! cache **miss**, never wrong bytes. The pipeline then recomputes the
//! stage and re-saves, healing the store in place.
//!
//! On top of that the store enforces a shared LRU byte budget across
//! all artifact kinds: an in-memory recency index is seeded from a
//! directory scan at open (ordered by file modification time) and
//! updated on every load/save; when a save pushes the resident total
//! over the budget, least-recently-used artifacts are deleted first.
//! The index is per-instance — concurrent processes sharing a
//! directory stay correct (atomic writes, self-verifying reads), they
//! just track recency independently.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{get_bytes, get_str, get_uvarint, put_bytes, put_str, put_uvarint};
use crate::hash::fnv1a;
use crate::pool::Mutex;

/// Bump on any incompatible change to the envelope layout. Stage
/// payload formats carry their own `STAGE_FORMAT_VERSION`s (mixed into
/// the artifact keys); this version covers only the envelope itself.
pub const STORE_FORMAT_VERSION: u64 = 1;

/// Upper bound on a decoded artifact payload (and kind string): keeps
/// a corrupted length field from asking the decoder to allocate the
/// address space.
const MAX_PAYLOAD: usize = 1 << 30;

/// Envelope: version, key echo, kind echo, payload, FNV-1a tail.
fn encode_envelope(key: u64, kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + kind.len() + 32);
    put_uvarint(&mut buf, STORE_FORMAT_VERSION);
    put_uvarint(&mut buf, key);
    put_str(&mut buf, kind);
    put_bytes(&mut buf, payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Strict inverse of [`encode_envelope`]; `None` on any damage.
fn decode_envelope(key: u64, kind: &str, bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a(payload) != stored {
        return None;
    }
    let mut pos = 0;
    if get_uvarint(payload, &mut pos)? != STORE_FORMAT_VERSION {
        return None;
    }
    if get_uvarint(payload, &mut pos)? != key {
        return None;
    }
    if get_str(payload, &mut pos, MAX_PAYLOAD)? != kind {
        return None;
    }
    let body = get_bytes(payload, &mut pos, MAX_PAYLOAD)?.to_vec();
    (pos == payload.len()).then_some(body)
}

struct LruEntry {
    seq: u64,
    size: u64,
}

struct Lru {
    next_seq: u64,
    entries: HashMap<String, LruEntry>,
    total: u64,
}

/// The content-addressed artifact store. Cheap to share by reference
/// across threads (the recency index is behind a mutex; file I/O is
/// lock-free).
pub struct ArtifactStore {
    dir: PathBuf,
    budget: u64,
    lru: Mutex<Lru>,
}

impl ArtifactStore {
    /// Open (creating the directory if needed) with no byte budget.
    pub fn open(dir: &Path) -> io::Result<ArtifactStore> {
        ArtifactStore::open_with_budget(dir, u64::MAX)
    }

    /// Open with a shared LRU byte budget across all artifact kinds.
    /// Existing files are indexed oldest-first by modification time, so
    /// eviction order survives a reopen.
    pub fn open_with_budget(dir: &Path, budget: u64) -> io::Result<ArtifactStore> {
        std::fs::create_dir_all(dir)?;
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = match entry {
                Ok(e) => e,
                Err(_) => continue,
            };
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            // Skip orphaned temp files and anything foreign.
            if name.starts_with('.') || !name.contains('.') {
                continue;
            }
            let meta = match entry.metadata() {
                Ok(m) => m,
                Err(_) => continue,
            };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((name, meta.len(), mtime));
        }
        // Oldest first; name breaks ties so the seed order is stable
        // even on filesystems with coarse mtimes.
        found.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut lru = Lru {
            next_seq: 0,
            entries: HashMap::with_capacity(found.len()),
            total: 0,
        };
        for (name, size, _) in found {
            let seq = lru.next_seq;
            lru.next_seq += 1;
            lru.total += size;
            lru.entries.insert(name, LruEntry { seq, size });
        }
        Ok(ArtifactStore {
            dir: dir.to_path_buf(),
            budget,
            lru: Mutex::new(lru),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes currently indexed as resident.
    pub fn resident_bytes(&self) -> u64 {
        self.lru.lock().total
    }

    fn file_name(kind: &str, key: u64) -> String {
        format!("{key:016x}.{kind}")
    }

    fn path(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(Self::file_name(kind, key))
    }

    /// Load and integrity-check the `kind` artifact stored under
    /// `key`. Any damage is a miss (`None`), never wrong bytes. A hit
    /// refreshes the artifact's LRU recency.
    pub fn load(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.path(kind, key)).ok()?;
        let payload = decode_envelope(key, kind, &bytes)?;
        let mut lru = self.lru.lock();
        let seq = lru.next_seq;
        lru.next_seq += 1;
        let name = Self::file_name(kind, key);
        match lru.entries.get_mut(&name) {
            Some(e) => e.seq = seq,
            None => {
                // Written by another process since open: adopt it.
                lru.total += bytes.len() as u64;
                lru.entries.insert(
                    name,
                    LruEntry {
                        seq,
                        size: bytes.len() as u64,
                    },
                );
            }
        }
        Some(payload)
    }

    /// Persist an artifact atomically (temp file + rename), then evict
    /// least-recently-used artifacts while the resident total exceeds
    /// the byte budget. The just-written artifact holds the highest
    /// recency, so it is evicted only if it alone exceeds the budget.
    pub fn save(&self, kind: &str, key: u64, payload: &[u8]) -> io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = encode_envelope(key, kind, payload);
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, self.path(kind, key))?;

        let mut evict: Vec<String> = Vec::new();
        {
            let mut lru = self.lru.lock();
            let name = Self::file_name(kind, key);
            if let Some(old) = lru.entries.remove(&name) {
                lru.total -= old.size;
            }
            let seq = lru.next_seq;
            lru.next_seq += 1;
            lru.total += bytes.len() as u64;
            lru.entries.insert(
                name,
                LruEntry {
                    seq,
                    size: bytes.len() as u64,
                },
            );
            while lru.total > self.budget && !lru.entries.is_empty() {
                let victim = lru
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.seq)
                    .map(|(n, _)| n.clone())
                    .expect("non-empty");
                if let Some(e) = lru.entries.remove(&victim) {
                    lru.total -= e.size;
                }
                evict.push(victim);
            }
        }
        for name in evict {
            let _ = std::fs::remove_file(self.dir.join(name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "casted-artifact-store-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_by_kind_and_key() {
        let dir = temp_store_dir("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save("ir", 7, b"module bytes").unwrap();
        store.save("sched", 7, b"schedule bytes").unwrap();
        assert_eq!(store.load("ir", 7).unwrap(), b"module bytes");
        assert_eq!(store.load("sched", 7).unwrap(), b"schedule bytes");
        assert!(store.load("ir", 8).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_truncation_and_version_skew_are_misses() {
        let dir = temp_store_dir("sabotage");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save("ed", 0xABCD, b"stage payload with some length").unwrap();
        let path = dir.join("000000000000abcd.ed");
        let clean = std::fs::read(&path).unwrap();

        // Flip one byte anywhere: the checksum must reject the file.
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 1;
            std::fs::write(&path, &bad).unwrap();
            assert!(store.load("ed", 0xABCD).is_none(), "flipped byte {i} accepted");
        }

        // Truncations at every length are misses too.
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(store.load("ed", 0xABCD).is_none(), "truncation to {cut} accepted");
        }

        // A record written under a different envelope version is a
        // miss even with a valid checksum.
        let mut skewed = Vec::new();
        put_uvarint(&mut skewed, STORE_FORMAT_VERSION + 1);
        put_uvarint(&mut skewed, 0xABCD);
        put_str(&mut skewed, "ed");
        put_bytes(&mut skewed, b"stage payload with some length");
        let sum = fnv1a(&skewed);
        skewed.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &skewed).unwrap();
        assert!(store.load("ed", 0xABCD).is_none());

        // Healing: a fresh save overwrites the damage and hits again.
        store.save("ed", 0xABCD, b"stage payload with some length").unwrap();
        assert_eq!(
            store.load("ed", 0xABCD).unwrap(),
            b"stage payload with some length"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_and_kind_echo_bind_the_artifact() {
        let dir = temp_store_dir("echo");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save("ir", 1, b"one").unwrap();
        // A file renamed to another key (or kind) must not be accepted
        // there: the envelope echoes both.
        std::fs::copy(dir.join(ArtifactStore::file_name("ir", 1)), dir.join(ArtifactStore::file_name("ir", 2)))
            .unwrap();
        std::fs::copy(dir.join(ArtifactStore::file_name("ir", 1)), dir.join(ArtifactStore::file_name("ed", 1)))
            .unwrap();
        assert!(store.load("ir", 2).is_none());
        assert!(store.load("ed", 1).is_none());
        assert_eq!(store.load("ir", 1).unwrap(), b"one");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_budget_evicts_least_recent_first() {
        let dir = temp_store_dir("lru");
        // Each envelope is payload + ~20 bytes of framing; a budget of
        // three-ish records keeps the arithmetic simple.
        let payload = [0u8; 100];
        let store = ArtifactStore::open_with_budget(&dir, 400).unwrap();
        store.save("a", 1, &payload).unwrap();
        store.save("a", 2, &payload).unwrap();
        store.save("a", 3, &payload).unwrap();
        assert!(store.load("a", 1).is_some());
        assert!(store.load("a", 2).is_some());
        assert!(store.load("a", 3).is_some());
        // Refresh 1 so 2 becomes the least-recent, then push over
        // budget: 2 must go, 1 and 3 must stay.
        assert!(store.load("a", 1).is_some());
        assert!(store.load("a", 3).is_some());
        store.save("a", 4, &payload).unwrap();
        assert!(store.load("a", 2).is_none(), "least-recent artifact survived");
        assert!(store.load("a", 1).is_some());
        assert!(store.load("a", 3).is_some());
        assert!(store.load("a", 4).is_some());
        assert!(store.resident_bytes() <= 400);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_seeds_the_index_from_disk() {
        let dir = temp_store_dir("reopen");
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.save("ir", 10, b"ten").unwrap();
            store.save("ir", 11, b"eleven").unwrap();
        }
        let store = ArtifactStore::open_with_budget(&dir, u64::MAX).unwrap();
        assert!(store.resident_bytes() > 0);
        assert_eq!(store.load("ir", 10).unwrap(), b"ten");
        assert_eq!(store.load("ir", 11).unwrap(), b"eleven");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
