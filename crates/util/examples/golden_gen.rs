use casted_util::Rng;
use casted_util::rng::SplitMix64;

fn main() {
    let mut r = Rng::seed_from_u64(0);
    print!("seed0: ");
    for _ in 0..6 { print!("0x{:016X}, ", r.next_u64()); }
    println!();
    let mut r = Rng::seed_from_u64(0xCA57ED);
    print!("seedC: ");
    for _ in 0..6 { print!("0x{:016X}, ", r.next_u64()); }
    println!();
    // campaign draw sequence: seed 0xCA57ED, dyn=1000
    let mut r = Rng::seed_from_u64(0xCA57ED);
    print!("draws: ");
    for _ in 0..8 {
        let at = r.gen_range(1..=1000u64);
        let bit = r.gen_range(0..64u32);
        print!("({at},{bit}), ");
    }
    println!();
    let mut sm = SplitMix64::new(0xCA57ED);
    print!("sm: ");
    for _ in 0..3 { print!("0x{:016X}, ", sm.next_u64()); }
    println!();
}
