//! The event-driven connection front end.
//!
//! One loop thread owns the listener and every connection through
//! [`casted_util::poll`] (epoll on Linux): nonblocking accepts,
//! readiness-driven reads with incremental frame assembly, buffered
//! nonblocking writes. Cache hits, pings, counters and admission
//! rejections are answered inline on the loop; cache-missing work is
//! queued for the worker pool, which posts encoded reply frames back
//! through [`Shared::post_completion`] plus a poller wakeup — the loop
//! never sleeps and never polls a flag.
//!
//! Per-connection state machine:
//!
//! ```text
//!   Idle ──work frame──► Busy ──terminal completion──► Idle
//!    │                    │
//!    │                    ├─ streaming: Cancel frame → flip the
//!    │                    │  campaign's cancel flag (next chunk stops)
//!    │                    └─ other frames → inbox (served after the
//!    │                       terminal frame, in order)
//!    └─ Ping/Counters/cache hit/Throttled: replied inline
//! ```
//!
//! Shutdown: once [`Shared::initiate_shutdown`] fires, the loop drops
//! the listener, keeps running until every queued job's terminal frame
//! is flushed, then closes the remaining connections and returns.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Shutdown as SockShutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use casted_util::poll::{Event, Interest, Poller};

use crate::protocol::{cache_key, decode_request, encode_response, Request, Response, MAX_FRAME};
use crate::server::{admit, kind_counter, Job, PushError, ReplySink, Shared};

/// Poller token for the listener; connection tokens count up from 1.
/// (`u64::MAX` is the poller's internal wakeup token.)
const LISTENER: u64 = 0;

/// Frames buffered behind a busy connection before further requests
/// get an immediate `Busy` instead — bounds per-connection memory the
/// same way the job queue bounds server-wide memory.
const INBOX_CAP: usize = 64;

/// Upper bound on one kernel wait; completions and shutdowns arrive
/// with an explicit wakeup, this is defense against a lost one.
const WAIT_SLICE: Duration = Duration::from_millis(500);

struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    /// Raw inbound bytes not yet assembled into a frame.
    rbuf: Vec<u8>,
    /// Outbound bytes; `wpos..` is the unwritten tail.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Complete request payloads waiting for the connection to go idle.
    inbox: VecDeque<Vec<u8>>,
    /// A job for this connection is queued or executing.
    busy: bool,
    /// Cancel flag of the in-flight streaming campaign, if any.
    stream_cancel: Option<Arc<AtomicBool>>,
    /// A Cancel raced the final chunk; the client is owed a reply if
    /// the terminal frame turns out not to be `Cancelled`.
    pending_cancel: bool,
    /// Latency span from dispatch to terminal frame.
    span: Option<casted_obs::Span>,
    close_after_flush: bool,
    dead: bool,
    write_interest: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer: IpAddr) -> Conn {
        Conn {
            stream,
            peer,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inbox: VecDeque::new(),
            busy: false,
            stream_cancel: None,
            pending_cancel: false,
            span: None,
            close_after_flush: false,
            dead: false,
            write_interest: false,
        }
    }

    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// Queue one length-prefixed frame for writing.
    fn push_frame(&mut self, payload: &[u8]) {
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    fn push_response(&mut self, resp: &Response) {
        self.push_frame(&encode_response(resp));
    }

    /// Write until clean or `WouldBlock`.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        if self.close_after_flush {
            self.dead = true;
        }
    }
}

/// Run the loop until shutdown completes. Never returns while a queued
/// job's reply is undelivered.
pub(crate) fn run(listener: TcpListener, shared: &Arc<Shared>, poller: Poller) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    // A missing notifier only costs wakeup latency: the wait below is
    // bounded by WAIT_SLICE, so completions still drain.
    *shared
        .notifier
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = poller.notifier().ok();
    if poller.add(&listener, LISTENER, Interest::Read).is_err() {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<Event> = Vec::new();
    // Jobs queued through the Loop sink whose terminal frame has not
    // come back yet; the drain waits for this to reach zero.
    let mut pending_jobs: usize = 0;
    let mut listener_live = true;

    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        if stopping {
            if listener_live {
                let _ = poller.remove(&listener);
                listener_live = false;
            }
            if pending_jobs == 0 && conns.values().all(|c| c.flushed()) {
                break;
            }
        }

        events.clear();
        let _ = poller.wait(&mut events, Some(WAIT_SLICE));

        // 1. Worker completions → connection write buffers.
        let completions = std::mem::take(
            &mut *shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for c in completions {
            if c.terminal {
                pending_jobs -= 1;
            }
            // The connection may have died while its job ran; the
            // frame is dropped but the accounting above still runs.
            let Some(conn) = conns.get_mut(&c.conn) else {
                continue;
            };
            conn.push_frame(&c.payload);
            if c.terminal {
                conn.busy = false;
                conn.stream_cancel = None;
                conn.span = None;
                if std::mem::take(&mut conn.pending_cancel) && !c.cancelled {
                    // The cancel lost the race with the final chunk:
                    // the terminal was a full `Injected`, so the
                    // Cancel request still gets its own reply.
                    conn.push_response(&Response::Err(
                        "cancel arrived after campaign completion".into(),
                    ));
                }
            }
        }

        // 2. Socket readiness.
        for ev in &events {
            if ev.token == LISTENER {
                accept_ready(&listener, &poller, &mut conns, &mut next_token, stopping);
            } else if let Some(conn) = conns.get_mut(&ev.token) {
                if ev.readable || ev.closed {
                    conn_read(conn);
                }
            }
        }

        // 3. Dispatch idle connections' inboxes, flush, retire.
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            while !conn.busy && !conn.dead && !conn.close_after_flush {
                let Some(payload) = conn.inbox.pop_front() else {
                    break;
                };
                dispatch(shared, conn, token, payload, &mut pending_jobs);
            }
            conn.flush();
            if !conn.dead {
                let want_write = !conn.flushed();
                if want_write != conn.write_interest {
                    let interest = if want_write {
                        Interest::ReadWrite
                    } else {
                        Interest::Read
                    };
                    if poller.modify(&conn.stream, token, interest).is_ok() {
                        conn.write_interest = want_write;
                    }
                }
            }
            if conn.dead {
                dead.push(token);
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                // A campaign streaming to a vanished client stops at
                // its next chunk boundary.
                if let Some(cancel) = &conn.stream_cancel {
                    cancel.store(true, Ordering::SeqCst);
                }
                let _ = poller.remove(&conn.stream);
            }
        }
    }

    for (_, conn) in conns.drain() {
        if let Some(cancel) = &conn.stream_cancel {
            cancel.store(true, Ordering::SeqCst);
        }
        let _ = poller.remove(&conn.stream);
        let _ = conn.stream.shutdown(SockShutdown::Both);
    }
}

fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    stopping: bool,
) {
    loop {
        match listener.accept() {
            Ok((stream, addr)) => {
                if stopping {
                    continue; // drained on the floor; the drop closes it
                }
                casted_obs::inc("serve.connections");
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller.add(&stream, token, Interest::Read).is_err() {
                    continue;
                }
                conns.insert(token, Conn::new(stream, addr.ip()));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Drain readable bytes and assemble complete frames into the inbox
/// (or act on them immediately: Cancel during a stream).
fn conn_read(conn: &mut Conn) {
    let mut buf = [0u8; 16 * 1024];
    let mut eof = false;
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    while conn.rbuf.len() >= 4 && !conn.close_after_flush {
        let len = u32::from_le_bytes([conn.rbuf[0], conn.rbuf[1], conn.rbuf[2], conn.rbuf[3]])
            as usize;
        if len > MAX_FRAME {
            // Oversized length prefix: structured reply, then close —
            // the byte stream beyond this point is untrustworthy.
            casted_obs::inc("serve.errors");
            conn.push_response(&Response::Err(format!(
                "bad frame: length {len} exceeds limit {MAX_FRAME}"
            )));
            conn.close_after_flush = true;
            conn.rbuf.clear();
            break;
        }
        if conn.rbuf.len() < 4 + len {
            break; // partial frame; more bytes next readiness
        }
        let payload = conn.rbuf[4..4 + len].to_vec();
        conn.rbuf.drain(..4 + len);
        route_frame(conn, payload);
    }
    if eof {
        if let Some(cancel) = &conn.stream_cancel {
            cancel.store(true, Ordering::SeqCst);
        }
        conn.dead = true;
    }
}

/// One complete frame arrived: act on a mid-stream Cancel now,
/// otherwise park it in the inbox for the dispatch pass.
fn route_frame(conn: &mut Conn, payload: Vec<u8>) {
    if conn.busy {
        if conn.stream_cancel.is_some()
            && matches!(decode_request(&payload), Ok(Request::Cancel))
        {
            casted_obs::inc("serve.requests");
            casted_obs::inc("serve.requests.cancel");
            if let Some(cancel) = &conn.stream_cancel {
                cancel.store(true, Ordering::SeqCst);
            }
            conn.pending_cancel = true;
            return;
        }
        if conn.inbox.len() >= INBOX_CAP {
            casted_obs::inc("serve.busy");
            conn.push_response(&Response::Busy);
            return;
        }
    }
    conn.inbox.push_back(payload);
}

/// Handle one request on an idle connection: reply inline, or hand it
/// to the worker pool and mark the connection busy.
fn dispatch(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    token: u64,
    payload: Vec<u8>,
    pending_jobs: &mut usize,
) {
    casted_obs::inc("serve.requests");
    // Cache fast path: the canonical payload *is* the cache key, so a
    // repeated work request (Compile/Simulate/Inject, tags 2..=4) can
    // be answered straight from the reply cache without decoding the
    // request at all — the dominant case under cached load.
    let mut checked_key: Option<u64> = None;
    if payload.first() == Some(&crate::protocol::PROTOCOL_VERSION) {
        if let Some(tag @ 2..=4) = payload.get(1).copied() {
            let key = cache_key(&payload);
            if let Some(bytes) = shared.cache.get(key) {
                let _span = casted_obs::span("serve.request_ns");
                casted_obs::inc(match tag {
                    2 => "serve.requests.compile",
                    3 => "serve.requests.simulate",
                    _ => "serve.requests.inject",
                });
                conn.push_frame(&bytes);
                return;
            }
            checked_key = Some(key);
        }
    }
    let req = match decode_request(&payload) {
        Ok(r) => r,
        Err(e) => {
            casted_obs::inc("serve.errors");
            conn.push_response(&Response::Err(format!("bad request: {e}")));
            conn.close_after_flush = true;
            return;
        }
    };
    casted_obs::inc(kind_counter(&req));
    match req {
        Request::Ping => {
            let _span = casted_obs::span("serve.request_ns");
            conn.push_response(&Response::Pong);
        }
        Request::Counters => {
            let _span = casted_obs::span("serve.request_ns");
            conn.push_response(&Response::Counters(casted_obs::snapshot_json()));
        }
        Request::Shutdown => {
            conn.push_response(&Response::ShuttingDown);
            conn.close_after_flush = true;
            shared.initiate_shutdown();
        }
        Request::Cancel => {
            // Reaching dispatch means no stream is in flight here (a
            // mid-stream Cancel is consumed in `route_frame`).
            conn.push_response(&Response::Err("no streaming campaign in flight".into()));
        }
        req @ Request::InjectStream { .. } => {
            if let Some(resp) = admit(shared, conn.peer) {
                conn.push_response(&resp);
                return;
            }
            let cancel = Arc::new(AtomicBool::new(false));
            let span = casted_obs::span("serve.request_ns");
            match shared.queue.try_push(Job {
                req,
                key: cache_key(&payload),
                enqueued: Instant::now(),
                cancel: Some(cancel.clone()),
                sink: ReplySink::Loop { conn: token },
            }) {
                Ok(depth) => {
                    casted_obs::gauge_set("serve.queue_depth", depth as u64);
                    conn.busy = true;
                    conn.stream_cancel = Some(cancel);
                    conn.span = Some(span);
                    *pending_jobs += 1;
                }
                Err(PushError::Full) => {
                    casted_obs::inc("serve.busy");
                    conn.push_response(&Response::Busy);
                }
                Err(PushError::Closed) => conn.push_response(&Response::ShuttingDown),
            }
        }
        req => {
            // A `checked_key` means the fast path above already probed
            // the cache and missed; don't probe (and count) twice.
            let key = checked_key.unwrap_or_else(|| cache_key(&payload));
            if checked_key.is_none() {
                if let Some(bytes) = shared.cache.get(key) {
                    let _span = casted_obs::span("serve.request_ns");
                    conn.push_frame(&bytes);
                    return;
                }
            }
            if let Some(resp) = admit(shared, conn.peer) {
                conn.push_response(&resp);
                return;
            }
            let span = casted_obs::span("serve.request_ns");
            match shared.queue.try_push(Job {
                req,
                key,
                enqueued: Instant::now(),
                cancel: None,
                sink: ReplySink::Loop { conn: token },
            }) {
                Ok(depth) => {
                    casted_obs::gauge_set("serve.queue_depth", depth as u64);
                    conn.busy = true;
                    conn.span = Some(span);
                    *pending_jobs += 1;
                }
                Err(PushError::Full) => {
                    casted_obs::inc("serve.busy");
                    conn.push_response(&Response::Busy);
                }
                Err(PushError::Closed) => conn.push_response(&Response::ShuttingDown),
            }
        }
    }
}
