//! The `casted-serve` wire protocol: length-prefixed binary frames.
//!
//! Every message is one frame ([`casted_util::codec::write_frame`]):
//! a 4-byte little-endian payload length (capped at [`MAX_FRAME`]),
//! then the payload. Payloads start with a version byte
//! ([`PROTOCOL_VERSION`]) and a tag byte; fields follow as varints,
//! zigzag varints and length-prefixed UTF-8 strings — see
//! `docs/SERVING.md` for the full field tables.
//!
//! Encoding is **canonical**: a value encodes to exactly one byte
//! sequence, and the decoder rejects trailing bytes. That is what
//! makes `Fnv64(request payload)` a sound content-addressed cache key
//! — two requests collide iff they are the same request (modulo the
//! 64-bit digest), and a cached reply is the byte-identical frame the
//! cold path would have produced.

use casted::service_api::{CompileReply, InjectReply, JobSpec, SimulateReply};
use casted::Scheme;
use casted_faults::Engine;
use casted_util::codec::{
    get_ivarint, get_str, get_uvarint, put_ivarint, put_str, put_uvarint,
};

/// Maximum frame payload size. Large enough for any workload source
/// plus headroom; small enough that a corrupt length prefix cannot
/// make the server allocate unboundedly.
pub const MAX_FRAME: usize = 1 << 20;

/// Wire protocol version; bumped on any format change. Version 2
/// added the streaming-inject extension (`InjectStream`/`Cancel`
/// requests; `Progress`/`Cancelled` frames) and structured admission
/// replies (`Throttled`/`Expired`). Version 3 added the recovery
/// schemes (TMRED tag 4, RBED tag 5) and widened outcome counts to
/// six entries for `Corrected`.
pub const PROTOCOL_VERSION: u8 = 3;

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Compile + schedule, reply with program statistics.
    Compile {
        /// What to compile.
        spec: JobSpec,
    },
    /// Compile + schedule + fault-free cycle-accurate simulation.
    Simulate {
        /// What to run.
        spec: JobSpec,
        /// Requested cycle deadline (the server caps it at its own
        /// configured maximum; `u64::MAX` = "server default").
        max_cycles: u64,
    },
    /// Compile + schedule + Monte-Carlo fault campaign.
    Inject {
        /// What to strike.
        spec: JobSpec,
        /// Monte-Carlo trials.
        trials: u64,
        /// Campaign seed.
        seed: u64,
        /// Campaign engine.
        engine: Engine,
    },
    /// Fetch the server's deterministic counter-only metrics snapshot.
    Counters,
    /// Graceful drain-then-exit.
    Shutdown,
    /// [`Request::Inject`] in streaming form: the server emits a
    /// [`Response::Progress`] frame with the running tally every
    /// `every` trials, then the terminal [`Response::Injected`] frame
    /// — byte-identical to the non-streaming reply for the equivalent
    /// `Inject` request.
    InjectStream {
        /// What to strike.
        spec: JobSpec,
        /// Monte-Carlo trials.
        trials: u64,
        /// Campaign seed.
        seed: u64,
        /// Campaign engine (tallies are engine-invariant; accepted for
        /// symmetry with [`Request::Inject`]).
        engine: Engine,
        /// Progress-frame period in trials (0 = server default).
        every: u64,
    },
    /// Cancel the in-flight streaming campaign on this connection.
    /// The server stops after the current chunk and replies with a
    /// terminal [`Response::Cancelled`] frame carrying the partial
    /// tally; outside a stream it is a no-op error.
    Cancel,
}

impl Request {
    /// Short kind label for metrics and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Compile { .. } => "compile",
            Request::Simulate { .. } => "simulate",
            Request::Inject { .. } => "inject",
            Request::Counters => "counters",
            Request::Shutdown => "shutdown",
            Request::InjectStream { .. } => "inject_stream",
            Request::Cancel => "cancel",
        }
    }

    /// Does this request run the pipeline (and therefore go through
    /// the cache + job queue)?
    pub fn is_work(&self) -> bool {
        matches!(
            self,
            Request::Compile { .. }
                | Request::Simulate { .. }
                | Request::Inject { .. }
                | Request::InjectStream { .. }
        )
    }
}

/// A server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Compile`].
    Compiled(CompileReply),
    /// Reply to [`Request::Simulate`].
    Simulated(SimulateReply),
    /// Reply to [`Request::Inject`].
    Injected(InjectReply),
    /// Backpressure: the job queue is full. The request was **not**
    /// queued; retry later.
    Busy,
    /// Structured failure (bad request, compile error, deadline…).
    Err(String),
    /// Reply to [`Request::Counters`]: the snapshot JSON.
    Counters(String),
    /// The server is draining and will not accept new work.
    ShuttingDown,
    /// Admission control: this client is over its token-bucket quota.
    /// The request was **not** queued; `retry_after_ms` says when the
    /// bucket refills enough to admit one request.
    Throttled {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// Admission control: the job waited in the queue past the
    /// server's deadline and was dropped **before execution**.
    Expired,
    /// Streaming: running campaign tally after `done` trials. Zero or
    /// more of these precede the terminal frame of an
    /// [`Request::InjectStream`].
    Progress {
        /// Trials completed so far.
        done: u64,
        /// Outcome counts so far, in `Outcome::ALL` order.
        counts: [u64; 6],
    },
    /// Streaming: terminal frame of a cancelled campaign — the partial
    /// tally after `done` trials (an exact prefix of the full run).
    Cancelled {
        /// Trials completed before the cancel took effect.
        done: u64,
        /// Outcome counts over those trials.
        counts: [u64; 6],
    },
}

impl Response {
    /// Only successful pipeline results enter the cache — errors,
    /// control replies, and streaming frames are never cached. (A
    /// streaming request's terminal `Injected` frame is also not
    /// cached: its cache key would be the `InjectStream` encoding,
    /// which differs from the equivalent `Inject`, and progress frames
    /// are connection-specific.)
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            Response::Compiled(_) | Response::Simulated(_) | Response::Injected(_)
        )
    }

    /// Is this frame the last one of its request? Streaming requests
    /// emit zero or more non-terminal [`Response::Progress`] frames
    /// before exactly one terminal frame; every other reply is
    /// terminal. The router relays frames until a terminal one.
    pub fn terminal(&self) -> bool {
        !matches!(self, Response::Progress { .. })
    }
}

fn scheme_to_u8(s: Scheme) -> u8 {
    match s {
        Scheme::Noed => 0,
        Scheme::Sced => 1,
        Scheme::Dced => 2,
        Scheme::Casted => 3,
        Scheme::Tmred => 4,
        Scheme::Rbed => 5,
    }
}

fn scheme_from_u8(b: u8) -> Result<Scheme, String> {
    match b {
        0 => Ok(Scheme::Noed),
        1 => Ok(Scheme::Sced),
        2 => Ok(Scheme::Dced),
        3 => Ok(Scheme::Casted),
        4 => Ok(Scheme::Tmred),
        5 => Ok(Scheme::Rbed),
        other => Err(format!("unknown scheme tag {other}")),
    }
}

fn engine_to_u8(e: Engine) -> u8 {
    match e {
        Engine::Reference => 0,
        Engine::Checkpointed => 1,
        Engine::Batched => 2,
    }
}

fn engine_from_u8(b: u8) -> Result<Engine, String> {
    match b {
        0 => Ok(Engine::Reference),
        1 => Ok(Engine::Checkpointed),
        2 => Ok(Engine::Batched),
        other => Err(format!("unknown engine tag {other}")),
    }
}

fn put_spec(buf: &mut Vec<u8>, spec: &JobSpec) {
    put_str(buf, &spec.source);
    buf.push(scheme_to_u8(spec.scheme));
    put_uvarint(buf, spec.issue as u64);
    put_uvarint(buf, spec.delay as u64);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("truncated {what}"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        get_uvarint(self.bytes, &mut self.pos).ok_or_else(|| format!("bad varint in {what}"))
    }

    fn i64(&mut self, what: &str) -> Result<i64, String> {
        get_ivarint(self.bytes, &mut self.pos).ok_or_else(|| format!("bad varint in {what}"))
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        get_str(self.bytes, &mut self.pos, MAX_FRAME)
            .map(str::to_string)
            .ok_or_else(|| format!("bad string in {what}"))
    }

    fn spec(&mut self) -> Result<JobSpec, String> {
        let source = self.str("job source")?;
        let scheme = scheme_from_u8(self.u8("scheme")?)?;
        let issue = self.u64("issue width")? as usize;
        let delay = self.u64("delay")? as u32;
        Ok(JobSpec {
            source,
            scheme,
            issue,
            delay,
        })
    }

    fn finish<T>(self, value: T) -> Result<T, String> {
        if self.pos == self.bytes.len() {
            Ok(value)
        } else {
            Err(format!(
                "{} trailing bytes after message",
                self.bytes.len() - self.pos
            ))
        }
    }
}

/// Encode a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = vec![PROTOCOL_VERSION];
    match req {
        Request::Ping => buf.push(1),
        Request::Compile { spec } => {
            buf.push(2);
            put_spec(&mut buf, spec);
        }
        Request::Simulate { spec, max_cycles } => {
            buf.push(3);
            put_spec(&mut buf, spec);
            put_uvarint(&mut buf, *max_cycles);
        }
        Request::Inject {
            spec,
            trials,
            seed,
            engine,
        } => {
            buf.push(4);
            put_spec(&mut buf, spec);
            put_uvarint(&mut buf, *trials);
            put_uvarint(&mut buf, *seed);
            buf.push(engine_to_u8(*engine));
        }
        Request::Counters => buf.push(5),
        Request::Shutdown => buf.push(6),
        Request::InjectStream {
            spec,
            trials,
            seed,
            engine,
            every,
        } => {
            buf.push(7);
            put_spec(&mut buf, spec);
            put_uvarint(&mut buf, *trials);
            put_uvarint(&mut buf, *seed);
            buf.push(engine_to_u8(*engine));
            put_uvarint(&mut buf, *every);
        }
        Request::Cancel => buf.push(8),
    }
    buf
}

/// Decode a request frame payload. Strict: unknown versions, unknown
/// tags, malformed fields and trailing bytes are all errors.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut r = Reader::new(payload);
    let version = r.u8("version byte")?;
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version {version} not supported (this server speaks {PROTOCOL_VERSION})"
        ));
    }
    let tag = r.u8("request tag")?;
    let req = match tag {
        1 => Request::Ping,
        2 => Request::Compile { spec: r.spec()? },
        3 => Request::Simulate {
            spec: r.spec()?,
            max_cycles: r.u64("max_cycles")?,
        },
        4 => Request::Inject {
            spec: r.spec()?,
            trials: r.u64("trials")?,
            seed: r.u64("seed")?,
            engine: engine_from_u8(r.u8("engine")?)?,
        },
        5 => Request::Counters,
        6 => Request::Shutdown,
        7 => Request::InjectStream {
            spec: r.spec()?,
            trials: r.u64("trials")?,
            seed: r.u64("seed")?,
            engine: engine_from_u8(r.u8("engine")?)?,
            every: r.u64("every")?,
        },
        8 => Request::Cancel,
        other => return Err(format!("unknown request tag {other}")),
    };
    r.finish(req)
}

/// Encode a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = vec![PROTOCOL_VERSION];
    match resp {
        Response::Pong => buf.push(1),
        Response::Compiled(c) => {
            buf.push(2);
            put_uvarint(&mut buf, c.bundles);
            put_uvarint(&mut buf, c.nop_slots);
            put_uvarint(&mut buf, c.cross_cluster_edges);
            put_uvarint(&mut buf, c.spilled);
            put_uvarint(&mut buf, c.code_growth_permille);
            put_uvarint(&mut buf, c.occupancy.len() as u64);
            for &n in &c.occupancy {
                put_uvarint(&mut buf, n);
            }
        }
        Response::Simulated(s) => {
            buf.push(3);
            put_uvarint(&mut buf, s.cycles);
            put_uvarint(&mut buf, s.dyn_insns);
            put_uvarint(&mut buf, s.bundles);
            put_uvarint(&mut buf, s.stall_cycles);
            put_uvarint(&mut buf, s.cross_reads);
            put_ivarint(&mut buf, s.exit_code);
            put_uvarint(&mut buf, s.stream_len);
            buf.extend_from_slice(&s.stream_digest.to_le_bytes());
        }
        Response::Injected(i) => {
            buf.push(4);
            put_uvarint(&mut buf, i.trials);
            for &c in &i.counts {
                put_uvarint(&mut buf, c);
            }
            put_uvarint(&mut buf, i.golden_cycles);
            put_uvarint(&mut buf, i.golden_dyn);
        }
        Response::Busy => buf.push(5),
        Response::Err(msg) => {
            buf.push(6);
            put_str(&mut buf, msg);
        }
        Response::Counters(json) => {
            buf.push(7);
            put_str(&mut buf, json);
        }
        Response::ShuttingDown => buf.push(8),
        Response::Throttled { retry_after_ms } => {
            buf.push(9);
            put_uvarint(&mut buf, *retry_after_ms);
        }
        Response::Expired => buf.push(10),
        Response::Progress { done, counts } => {
            buf.push(11);
            put_uvarint(&mut buf, *done);
            for &c in counts {
                put_uvarint(&mut buf, c);
            }
        }
        Response::Cancelled { done, counts } => {
            buf.push(12);
            put_uvarint(&mut buf, *done);
            for &c in counts {
                put_uvarint(&mut buf, c);
            }
        }
    }
    buf
}

/// Decode a response frame payload (same strictness as
/// [`decode_request`]).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut r = Reader::new(payload);
    let version = r.u8("version byte")?;
    if version != PROTOCOL_VERSION {
        return Err(format!("protocol version {version} not supported"));
    }
    let tag = r.u8("response tag")?;
    let resp = match tag {
        1 => Response::Pong,
        2 => {
            let bundles = r.u64("bundles")?;
            let nop_slots = r.u64("nop_slots")?;
            let cross_cluster_edges = r.u64("cross_cluster_edges")?;
            let spilled = r.u64("spilled")?;
            let code_growth_permille = r.u64("code_growth")?;
            let n = r.u64("occupancy len")?;
            if n > 64 {
                return Err(format!("implausible occupancy vector length {n}"));
            }
            let mut occupancy = Vec::with_capacity(n as usize);
            for _ in 0..n {
                occupancy.push(r.u64("occupancy")?);
            }
            Response::Compiled(CompileReply {
                bundles,
                nop_slots,
                cross_cluster_edges,
                spilled,
                code_growth_permille,
                occupancy,
            })
        }
        3 => {
            let cycles = r.u64("cycles")?;
            let dyn_insns = r.u64("dyn_insns")?;
            let bundles = r.u64("bundles")?;
            let stall_cycles = r.u64("stall_cycles")?;
            let cross_reads = r.u64("cross_reads")?;
            let exit_code = r.i64("exit_code")?;
            let stream_len = r.u64("stream_len")?;
            let mut digest = [0u8; 8];
            for b in digest.iter_mut() {
                *b = r.u8("stream_digest")?;
            }
            Response::Simulated(SimulateReply {
                cycles,
                dyn_insns,
                bundles,
                stall_cycles,
                cross_reads,
                exit_code,
                stream_len,
                stream_digest: u64::from_le_bytes(digest),
            })
        }
        4 => {
            let trials = r.u64("trials")?;
            let mut counts = [0u64; 6];
            for c in counts.iter_mut() {
                *c = r.u64("outcome count")?;
            }
            Response::Injected(InjectReply {
                trials,
                counts,
                golden_cycles: r.u64("golden_cycles")?,
                golden_dyn: r.u64("golden_dyn")?,
            })
        }
        5 => Response::Busy,
        6 => Response::Err(r.str("error message")?),
        7 => Response::Counters(r.str("counters json")?),
        8 => Response::ShuttingDown,
        9 => Response::Throttled {
            retry_after_ms: r.u64("retry_after_ms")?,
        },
        10 => Response::Expired,
        11 => {
            let done = r.u64("done")?;
            let mut counts = [0u64; 6];
            for c in counts.iter_mut() {
                *c = r.u64("outcome count")?;
            }
            Response::Progress { done, counts }
        }
        12 => {
            let done = r.u64("done")?;
            let mut counts = [0u64; 6];
            for c in counts.iter_mut() {
                *c = r.u64("outcome count")?;
            }
            Response::Cancelled { done, counts }
        }
        other => return Err(format!("unknown response tag {other}")),
    };
    r.finish(resp)
}

/// The content-addressed cache key of a request: the FNV-1a digest of
/// its canonical encoding. Covers every field that influences the
/// reply — source, scheme, issue, delay, engine, seed, trials,
/// deadline — because they are all *in* the encoding.
pub fn cache_key(payload: &[u8]) -> u64 {
    casted_util::hash::fnv1a(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            source: "fn main() { out(1); }".into(),
            scheme: Scheme::Casted,
            issue: 2,
            delay: 3,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Compile { spec: spec() },
            Request::Simulate {
                spec: spec(),
                max_cycles: u64::MAX,
            },
            Request::Inject {
                spec: spec(),
                trials: 300,
                seed: 0xCA57ED,
                engine: Engine::Checkpointed,
            },
            Request::Inject {
                spec: spec(),
                trials: 300,
                seed: 0xCA57ED,
                engine: Engine::Batched,
            },
            Request::Counters,
            Request::Shutdown,
            Request::InjectStream {
                spec: spec(),
                trials: 5000,
                seed: 0xCA57ED,
                engine: Engine::Batched,
                every: 250,
            },
            Request::Cancel,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Pong,
            Response::Compiled(CompileReply {
                bundles: 10,
                nop_slots: 3,
                cross_cluster_edges: 2,
                spilled: 0,
                code_growth_permille: 2345,
                occupancy: vec![7, 3],
            }),
            Response::Simulated(SimulateReply {
                cycles: 100,
                dyn_insns: 90,
                bundles: 80,
                stall_cycles: 10,
                cross_reads: 5,
                exit_code: -7,
                stream_len: 1,
                stream_digest: 0xdead_beef_dead_beef,
            }),
            Response::Injected(InjectReply {
                trials: 300,
                counts: [100, 150, 20, 25, 5, 30],
                golden_cycles: 4000,
                golden_dyn: 3000,
            }),
            Response::Busy,
            Response::Err("compile failed: line 1: nope".into()),
            Response::Counters("{\n}".into()),
            Response::ShuttingDown,
            Response::Throttled { retry_after_ms: 1500 },
            Response::Expired,
            Response::Progress {
                done: 250,
                counts: [100, 100, 25, 20, 5, 15],
            },
            Response::Cancelled {
                done: 500,
                counts: [200, 200, 50, 40, 10, 30],
            },
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn progress_frames_are_the_only_non_terminal_replies() {
        assert!(!Response::Progress { done: 1, counts: [1, 0, 0, 0, 0, 0] }.terminal());
        for r in [
            Response::Pong,
            Response::Busy,
            Response::Expired,
            Response::Throttled { retry_after_ms: 1 },
            Response::Cancelled { done: 1, counts: [1, 0, 0, 0, 0, 0] },
            Response::ShuttingDown,
            Response::Err("x".into()),
        ] {
            assert!(r.terminal(), "{r:?}");
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_tags() {
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).unwrap_err().contains("trailing"));
        assert!(decode_request(&[PROTOCOL_VERSION, 99]).unwrap_err().contains("unknown request tag"));
        assert!(decode_request(&[9, 1]).unwrap_err().contains("version"));
        assert!(decode_request(&[]).unwrap_err().contains("truncated"));
        assert!(decode_response(&[PROTOCOL_VERSION, 99]).unwrap_err().contains("unknown response tag"));
    }

    #[test]
    fn cache_key_is_total_over_request_fields() {
        let base = Request::Simulate {
            spec: spec(),
            max_cycles: 1000,
        };
        let k0 = cache_key(&encode_request(&base));
        // Any field change changes the key.
        let mut other = spec();
        other.issue = 3;
        let variants = [
            Request::Simulate { spec: other, max_cycles: 1000 },
            Request::Simulate { spec: spec(), max_cycles: 1001 },
            Request::Compile { spec: spec() },
        ];
        for v in &variants {
            assert_ne!(k0, cache_key(&encode_request(v)), "{v:?}");
        }
        // And identical requests share it.
        assert_eq!(k0, cache_key(&encode_request(&base)));
    }
}
