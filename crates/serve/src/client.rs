//! Minimal blocking client for the `casted-serve` protocol.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use casted_util::codec::{read_frame, write_frame};

use crate::protocol::{
    decode_response, encode_request, Request, Response, MAX_FRAME,
};

/// A connected client. One request/response exchange at a time; the
/// connection is reusable for any number of sequential requests.
///
/// Replies are read through an internal buffer so a frame costs one
/// read syscall instead of one for the length prefix and one for the
/// payload; writes go to the unbuffered stream (a request frame is a
/// single write).
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server address (e.g. `127.0.0.1:4650`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Set a read timeout so a wedged server cannot hang the client
    /// forever. `None` removes the timeout.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one request and wait for the reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let payload = self.request_raw(&encode_request(req))?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Send a pre-encoded request payload and return the raw reply
    /// payload bytes. Used by the determinism gate, which compares
    /// reply *bytes*, and by the bench loop, which skips re-encoding.
    pub fn request_raw(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, payload)?;
        match read_frame(&mut self.reader, MAX_FRAME)? {
            Some(reply) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without replying",
            )),
        }
    }

    /// Send raw bytes as a frame without waiting for a reply (test
    /// helper for hardening tests that feed the server garbage).
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Read one reply frame without sending anything first.
    pub fn read_reply(&mut self) -> io::Result<Option<Vec<u8>>> {
        read_frame(&mut self.reader, MAX_FRAME)
    }

    /// A handle that can cancel this client's in-flight streaming
    /// campaign from another thread (or from inside the progress
    /// callback's decision, via [`Client::request_stream`]'s return).
    pub fn canceller(&self) -> io::Result<Canceller> {
        Ok(Canceller {
            stream: self.stream.try_clone()?,
        })
    }

    /// Run a streaming request: send `req` (normally
    /// [`Request::InjectStream`]), invoke `progress` on every
    /// non-terminal [`Response::Progress`] frame, and return the
    /// terminal reply. If `progress` returns `false`, a
    /// [`Request::Cancel`] is sent and the stream is drained to its
    /// terminal frame (a `Cancelled` with the partial tally — or, if
    /// the cancel lost the race with the final chunk, the full
    /// `Injected` plus the server's late-cancel `Err` reply, which
    /// this helper consumes; see `docs/SERVING.md`).
    pub fn request_stream(
        &mut self,
        req: &Request,
        progress: &mut dyn FnMut(u64, &[u64; 6]) -> bool,
    ) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let mut cancel_sent = false;
        loop {
            let payload = match read_frame(&mut self.reader, MAX_FRAME)? {
                Some(p) => p,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-stream",
                    ))
                }
            };
            let resp = decode_response(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            match resp {
                Response::Progress { done, counts } => {
                    if !progress(done, &counts) && !cancel_sent {
                        write_frame(&mut self.stream, &encode_request(&Request::Cancel))?;
                        cancel_sent = true;
                    }
                }
                terminal => {
                    if cancel_sent && !matches!(terminal, Response::Cancelled { .. }) {
                        // Late-cancel rule: the Cancel still gets its
                        // own Err reply; consume it so the connection
                        // stays aligned for the next request.
                        let _ = read_frame(&mut self.reader, MAX_FRAME)?;
                    }
                    return Ok(terminal);
                }
            }
        }
    }
}

/// Cancels a streaming campaign from outside the read loop. Obtained
/// from [`Client::canceller`]; safe to use from another thread while
/// the owning client is blocked reading stream frames.
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    /// Send a [`Request::Cancel`] on the shared connection. The owning
    /// client's in-flight stream ends with a terminal
    /// [`Response::Cancelled`] (or the late-cancel `Injected` + `Err`
    /// pair if the campaign finished first — callers using
    /// [`Client::request_stream`] don't need to care, it handles both).
    pub fn cancel(&mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(&Request::Cancel))
    }
}
