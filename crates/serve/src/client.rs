//! Minimal blocking client for the `casted-serve` protocol.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use casted_util::codec::{read_frame, write_frame};

use crate::protocol::{
    decode_response, encode_request, Request, Response, MAX_FRAME,
};

/// A connected client. One request/response exchange at a time; the
/// connection is reusable for any number of sequential requests.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server address (e.g. `127.0.0.1:4650`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Set a read timeout so a wedged server cannot hang the client
    /// forever. `None` removes the timeout.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one request and wait for the reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let payload = self.request_raw(&encode_request(req))?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Send a pre-encoded request payload and return the raw reply
    /// payload bytes. Used by the determinism gate, which compares
    /// reply *bytes*, and by the bench loop, which skips re-encoding.
    pub fn request_raw(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, payload)?;
        match read_frame(&mut self.stream, MAX_FRAME)? {
            Some(reply) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without replying",
            )),
        }
    }

    /// Send raw bytes as a frame without waiting for a reply (test
    /// helper for hardening tests that feed the server garbage).
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Read one reply frame without sending anything first.
    pub fn read_reply(&mut self) -> io::Result<Option<Vec<u8>>> {
        read_frame(&mut self.stream, MAX_FRAME)
    }
}
