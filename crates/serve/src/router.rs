//! The shard router: one front process, N `casted-serve` shards.
//!
//! A single server scales compile/inject throughput with its worker
//! pool, but stays one process: one reply cache, one allocator, one
//! set of locks. The router multiplies that horizontally without
//! giving up the cache contract:
//!
//! * Every **work** request (Compile/Simulate/Inject/InjectStream) is
//!   routed by its content hash — `Fnv64(canonical request payload)`,
//!   the *same* key the reply cache uses — modulo the shard count.
//!   Identical requests always land on the same shard, so no cache,
//!   section-store or artifact entry is ever duplicated across shards,
//!   and every repeat is a hit on the shard that already computed it.
//! * Reply frames are relayed **verbatim**: the bytes a client reads
//!   through the router are the bytes the shard wrote, so replies are
//!   byte-identical to a single-process server (CI proves this).
//! * Streaming works through the router: Progress frames relay as they
//!   arrive, and a client `Cancel` is forwarded to the shard running
//!   the campaign (including the late-cancel extra-reply rule — see
//!   `docs/SERVING.md`).
//!
//! Control requests are answered locally: `Ping` (router liveness),
//! `Counters` (the *router's* snapshot — `serve.shard.*` routing
//! counters; connect to a shard directly for its execution counters)
//! and `Cancel`-outside-a-stream. `Shutdown` is a fleet operation: the
//! router forwards `Shutdown` to every shard, replies `ShuttingDown`,
//! drains, and exits.
//!
//! Internally the router runs [`RouterConfig::loops`] independent
//! event loops (same `casted_util::poll` machinery as the server's);
//! a blocking acceptor hands each new client to a loop round-robin,
//! and each loop owns its clients plus their per-client backend
//! connections outright — no shared connection state, so loops never
//! contend. Routing decisions sniff the canonical tag byte instead of
//! fully decoding requests, which keeps the relay cost per frame far
//! below a shard's per-request work — that is what lets the 2- and
//! 4-shard configurations actually scale (BENCH_serve.json). Like the
//! server's event model this is Linux-only; [`Router::start`] fails
//! cleanly where the poll backend is unavailable.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use casted_util::codec::{read_frame, write_frame};
use casted_util::poll::{Event, Interest, Notifier, Poller};

use crate::protocol::{
    cache_key, decode_request, encode_request, encode_response, Request, Response, MAX_FRAME,
    PROTOCOL_VERSION,
};

const INBOX_CAP: usize = 64;
const WAIT_SLICE: Duration = Duration::from_millis(500);
/// Hard ceiling on the post-shutdown drain, per loop.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Static routing-counter names (obs counters require `&'static str`).
const SHARD_COUNTERS: [&str; 8] = [
    "serve.shard.to.0",
    "serve.shard.to.1",
    "serve.shard.to.2",
    "serve.shard.to.3",
    "serve.shard.to.4",
    "serve.shard.to.5",
    "serve.shard.to.6",
    "serve.shard.to.7",
];

fn shard_counter(i: usize) -> &'static str {
    SHARD_COUNTERS
        .get(i)
        .copied()
        .unwrap_or("serve.shard.to.other")
}

/// Tag byte of a canonically-encoded frame payload, without a full
/// decode — the router's hot path classifies on this alone.
fn sniff_tag(payload: &[u8]) -> Option<u8> {
    if payload.first() != Some(&PROTOCOL_VERSION) {
        return None;
    }
    payload.get(1).copied()
}

// Request tags the router handles locally (see protocol.rs).
const TAG_PING: u8 = 1;
const TAG_COUNTERS: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_INJECT_STREAM: u8 = 7;
const TAG_CANCEL: u8 = 8;
// Response tags the relay state machine needs.
const TAG_PROGRESS: u8 = 11;
const TAG_CANCELLED: u8 = 12;

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral loopback port.
    pub addr: String,
    /// Shard server addresses; requests hash onto these in order.
    pub shards: Vec<String>,
    /// Event loops relaying connections (0 = auto: up to 4, bounded by
    /// the host's parallelism). Each accepted client is pinned to one
    /// loop round-robin.
    pub loops: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            loops: 0,
        }
    }
}

/// Hand-off point from the acceptor to one event loop.
struct LoopInbox {
    streams: Mutex<Vec<TcpStream>>,
    notifier: Option<Notifier>,
}

struct RouterShared {
    stop: AtomicBool,
    inboxes: Vec<Arc<LoopInbox>>,
    /// Bound address; shutdown self-connects to unblock the acceptor.
    self_addr: SocketAddr,
}

impl RouterShared {
    fn initiate_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for inbox in &self.inboxes {
            if let Some(n) = &inbox.notifier {
                n.notify();
            }
        }
        let _ = TcpStream::connect_timeout(&self.self_addr, Duration::from_millis(200));
    }
}

/// A running router. Dropping the handle stops it (shards are left
/// running; send a protocol `Shutdown` through the router to stop the
/// whole fleet).
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Router {
    /// Bind and start routing. Fails without at least one shard or on
    /// targets without the poll backend.
    pub fn start(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                "router needs at least one shard address",
            ));
        }
        let loops = if cfg.loops == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4)
        } else {
            cfg.loops
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        // Build every loop's poller + inbox before spawning anything,
        // so a poll-backend failure aborts cleanly.
        let mut pollers = Vec::with_capacity(loops);
        let mut inboxes = Vec::with_capacity(loops);
        for _ in 0..loops {
            let poller = Poller::new()?;
            let notifier = poller.notifier().ok();
            pollers.push(poller);
            inboxes.push(Arc::new(LoopInbox {
                streams: Mutex::new(Vec::new()),
                notifier,
            }));
        }
        let shared = Arc::new(RouterShared {
            stop: AtomicBool::new(false),
            inboxes: inboxes.clone(),
            self_addr: addr,
        });

        let mut threads = Vec::with_capacity(loops + 1);
        for (i, poller) in pollers.into_iter().enumerate() {
            let sh = shared.clone();
            let inbox = inboxes[i].clone();
            let shards = cfg.shards.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("router-loop-{i}"))
                    .spawn(move || run_loop(&sh, &shards, inbox, poller))?,
            );
        }
        let sh = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("router-accept".into())
                .spawn(move || accept_loop(listener, &sh))?,
        );
        Ok(Router {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the router exits (a client sent `Shutdown`).
    pub fn wait(mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }

    /// Stop the router (shards stay up).
    pub fn shutdown(mut self) {
        self.shared.initiate_shutdown();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shared.initiate_shutdown();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// Blocking accept, round-robin hand-off to the event loops. Shutdown
/// unblocks it with the self-connect in
/// [`RouterShared::initiate_shutdown`].
fn accept_loop(listener: TcpListener, shared: &Arc<RouterShared>) {
    let next = AtomicUsize::new(0);
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        casted_obs::inc("serve.shard.conns");
        let i = next.fetch_add(1, Ordering::Relaxed) % shared.inboxes.len();
        let inbox = &shared.inboxes[i];
        inbox
            .streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(stream);
        if let Some(n) = &inbox.notifier {
            n.notify();
        }
    }
}

/// Relay bookkeeping for a client with a request in flight on a shard.
struct Relay {
    backend: u64,
    streaming: bool,
    /// A Cancel was forwarded; whether it earns its own reply depends
    /// on the terminal frame (the late-cancel rule).
    cancel_forwarded: bool,
    /// Terminal seen, one follow-up reply (to the raced Cancel) still
    /// expected before the connection goes idle.
    awaiting_extra: bool,
}

struct Buffered {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    write_interest: bool,
    dead: bool,
}

impl Buffered {
    fn new(stream: TcpStream) -> Buffered {
        Buffered {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            write_interest: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    fn push_frame(&mut self, payload: &[u8]) {
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    fn push_response(&mut self, resp: &Response) {
        self.push_frame(&encode_response(resp));
    }

    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }

    /// Read until `WouldBlock`/EOF; returns the complete frames
    /// assembled so far and whether the connection is finished.
    fn read_frames(&mut self) -> (Vec<Vec<u8>>, bool) {
        let mut buf = [0u8; 16 * 1024];
        let mut closed = false;
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => self.rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        let mut frames = Vec::new();
        while self.rbuf.len() >= 4 {
            let len =
                u32::from_le_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]])
                    as usize;
            if len > MAX_FRAME {
                closed = true;
                self.rbuf.clear();
                break;
            }
            if self.rbuf.len() < 4 + len {
                break;
            }
            frames.push(self.rbuf[4..4 + len].to_vec());
            self.rbuf.drain(..4 + len);
        }
        (frames, closed)
    }
}

struct ClientConn {
    io: Buffered,
    inbox: VecDeque<Vec<u8>>,
    relay: Option<Relay>,
    /// shard index → backend token, opened lazily per client so reply
    /// streams from different clients never interleave on one socket.
    backends: HashMap<usize, u64>,
    close_after_flush: bool,
}

struct BackendConn {
    io: Buffered,
    client: u64,
    shard: usize,
}

/// One router event loop: owns a disjoint set of clients and their
/// backends; structurally the same read/dispatch/flush cycle as the
/// server's event loop.
fn run_loop(
    shared: &Arc<RouterShared>,
    shards: &[String],
    inbox: Arc<LoopInbox>,
    poller: Poller,
) {
    let mut clients: HashMap<u64, ClientConn> = HashMap::new();
    let mut backends: HashMap<u64, BackendConn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut events: Vec<Event> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_DEADLINE);
            let drained = clients
                .values()
                .all(|c| c.relay.is_none() && c.io.flushed());
            if drained || Instant::now() >= deadline {
                break;
            }
        }

        events.clear();
        let _ = poller.wait(&mut events, Some(WAIT_SLICE));

        // Adopt newly accepted clients.
        let adopted = std::mem::take(
            &mut *inbox.streams.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for stream in adopted {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = next_token;
            next_token += 1;
            if poller.add(&stream, token, Interest::Read).is_err() {
                continue;
            }
            clients.insert(
                token,
                ClientConn {
                    io: Buffered::new(stream),
                    inbox: VecDeque::new(),
                    relay: None,
                    backends: HashMap::new(),
                    close_after_flush: false,
                },
            );
        }

        for ev in &events {
            if clients.contains_key(&ev.token) {
                if ev.readable || ev.closed {
                    client_read(&mut clients, &mut backends, ev.token);
                }
            } else if backends.contains_key(&ev.token) {
                if ev.readable || ev.closed {
                    backend_read(&mut clients, &mut backends, ev.token);
                }
            }
        }

        // Dispatch idle clients' queued requests.
        let tokens: Vec<u64> = clients.keys().copied().collect();
        for token in tokens {
            loop {
                let Some(client) = clients.get_mut(&token) else {
                    break;
                };
                if client.relay.is_some() || client.io.dead || client.close_after_flush {
                    break;
                }
                let Some(payload) = client.inbox.pop_front() else {
                    break;
                };
                dispatch(
                    shared,
                    shards,
                    &poller,
                    &mut clients,
                    &mut backends,
                    &mut next_token,
                    token,
                    payload,
                );
            }
        }

        // Flush + interest + reap, both maps.
        let mut dead_clients: Vec<u64> = Vec::new();
        for (&token, client) in clients.iter_mut() {
            client.io.flush();
            if client.io.flushed() && client.close_after_flush {
                client.io.dead = true;
            }
            if client.io.dead {
                dead_clients.push(token);
            } else {
                update_interest(&poller, token, &mut client.io);
            }
        }
        let mut dead_backends: Vec<u64> = Vec::new();
        for (&token, backend) in backends.iter_mut() {
            backend.io.flush();
            if backend.io.dead {
                dead_backends.push(token);
            } else {
                update_interest(&poller, token, &mut backend.io);
            }
        }
        for token in dead_clients {
            drop_client(&poller, &mut clients, &mut backends, token);
        }
        for token in dead_backends {
            drop_backend(&poller, &mut clients, &mut backends, token);
        }
    }

    for (_, c) in clients.drain() {
        let _ = poller.remove(&c.io.stream);
        let _ = c.io.stream.shutdown(SockShutdown::Both);
    }
    for (_, b) in backends.drain() {
        let _ = poller.remove(&b.io.stream);
        let _ = b.io.stream.shutdown(SockShutdown::Both);
    }
}

fn update_interest(poller: &Poller, token: u64, io: &mut Buffered) {
    let want_write = !io.flushed();
    if want_write != io.write_interest {
        let interest = if want_write {
            Interest::ReadWrite
        } else {
            Interest::Read
        };
        if poller.modify(&io.stream, token, interest).is_ok() {
            io.write_interest = want_write;
        }
    }
}

fn client_read(
    clients: &mut HashMap<u64, ClientConn>,
    backends: &mut HashMap<u64, BackendConn>,
    token: u64,
) {
    let Some(client) = clients.get_mut(&token) else {
        return;
    };
    let (frames, closed) = client.io.read_frames();
    let mut forward_cancel: Option<u64> = None;
    for payload in frames {
        match &mut client.relay {
            Some(relay)
                if relay.streaming && sniff_tag(&payload) == Some(TAG_CANCEL) =>
            {
                casted_obs::inc("serve.shard.cancels");
                relay.cancel_forwarded = true;
                forward_cancel = Some(relay.backend);
            }
            Some(_) if client.inbox.len() >= INBOX_CAP => {
                client.io.push_response(&Response::Busy);
            }
            _ => client.inbox.push_back(payload),
        }
    }
    if closed {
        client.io.dead = true;
    }
    if let Some(btok) = forward_cancel {
        if let Some(backend) = backends.get_mut(&btok) {
            backend.io.push_frame(&encode_request(&Request::Cancel));
        }
    }
}

fn backend_read(
    clients: &mut HashMap<u64, ClientConn>,
    backends: &mut HashMap<u64, BackendConn>,
    token: u64,
) {
    let (frames, closed, client_token) = {
        let Some(backend) = backends.get_mut(&token) else {
            return;
        };
        let (frames, closed) = backend.io.read_frames();
        (frames, closed, backend.client)
    };
    if let Some(client) = clients.get_mut(&client_token) {
        for payload in frames {
            // Relay verbatim — byte-identity is the router's contract.
            client.io.push_frame(&payload);
            let Some(relay) = client.relay.as_mut() else {
                continue; // unsolicited frame; relayed and ignored
            };
            if relay.backend != token {
                continue;
            }
            let done = if relay.awaiting_extra {
                // This is the raced Cancel's own (Err) reply.
                true
            } else {
                match sniff_tag(&payload) {
                    Some(TAG_PROGRESS) => false, // keep relaying
                    Some(TAG_CANCELLED) => true,
                    // Any other (or unsniffable) frame is terminal. If
                    // a Cancel raced a non-Cancelled terminal, the
                    // shard owes one more reply (the late-cancel rule).
                    _ => {
                        if relay.cancel_forwarded {
                            relay.awaiting_extra = true;
                            false
                        } else {
                            true
                        }
                    }
                }
            };
            if done {
                client.relay = None;
            }
        }
    }
    if closed {
        if let Some(backend) = backends.get_mut(&token) {
            backend.io.dead = true;
        }
    }
}

/// Route one idle-client request. Control requests are answered
/// locally; work requests forward to `Fnv64(payload) % shards`.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    shared: &Arc<RouterShared>,
    shards: &[String],
    poller: &Poller,
    clients: &mut HashMap<u64, ClientConn>,
    backends: &mut HashMap<u64, BackendConn>,
    next_token: &mut u64,
    token: u64,
    payload: Vec<u8>,
) {
    match sniff_tag(&payload) {
        Some(TAG_PING) => {
            if let Some(client) = clients.get_mut(&token) {
                client.io.push_response(&Response::Pong);
            }
        }
        Some(TAG_COUNTERS) => {
            // The router's own snapshot (serve.shard.* routing
            // counters); shard execution counters live in the shards.
            if let Some(client) = clients.get_mut(&token) {
                client
                    .io
                    .push_response(&Response::Counters(casted_obs::snapshot_json()));
            }
        }
        Some(TAG_CANCEL) => {
            if let Some(client) = clients.get_mut(&token) {
                client
                    .io
                    .push_response(&Response::Err("no streaming campaign in flight".into()));
            }
        }
        Some(TAG_SHUTDOWN) => {
            // Fleet shutdown: every shard drains, then the router does.
            shutdown_shards(shards);
            if let Some(client) = clients.get_mut(&token) {
                client.io.push_response(&Response::ShuttingDown);
                client.close_after_flush = true;
            }
            shared.initiate_shutdown();
        }
        Some(tag @ 2..=4) | Some(tag @ TAG_INJECT_STREAM) => {
            let shard = (cache_key(&payload) % shards.len() as u64) as usize;
            casted_obs::inc("serve.shard.requests");
            casted_obs::inc(shard_counter(shard));
            let streaming = tag == TAG_INJECT_STREAM;
            match ensure_backend(shards, poller, clients, backends, next_token, token, shard) {
                Ok(btok) => {
                    if let Some(backend) = backends.get_mut(&btok) {
                        backend.io.push_frame(&payload);
                    }
                    if let Some(client) = clients.get_mut(&token) {
                        client.relay = Some(Relay {
                            backend: btok,
                            streaming,
                            cancel_forwarded: false,
                            awaiting_extra: false,
                        });
                    }
                }
                Err(e) => {
                    casted_obs::inc("serve.shard.backend_errors");
                    if let Some(client) = clients.get_mut(&token) {
                        client.io.push_response(&Response::Err(format!(
                            "shard {shard} unavailable: {e}"
                        )));
                    }
                }
            }
        }
        _ => {
            // Not a recognizable canonical request: decode for the
            // error text and close, like the server does.
            let msg = match decode_request(&payload) {
                Ok(req) => format!("unroutable request {}", req.kind()),
                Err(e) => format!("bad request: {e}"),
            };
            if let Some(client) = clients.get_mut(&token) {
                client.io.push_response(&Response::Err(msg));
                client.close_after_flush = true;
            }
        }
    }
}

/// Find or open this client's backend connection to `shard`.
fn ensure_backend(
    shards: &[String],
    poller: &Poller,
    clients: &mut HashMap<u64, ClientConn>,
    backends: &mut HashMap<u64, BackendConn>,
    next_token: &mut u64,
    client_token: u64,
    shard: usize,
) -> io::Result<u64> {
    if let Some(client) = clients.get(&client_token) {
        if let Some(&btok) = client.backends.get(&shard) {
            if backends.contains_key(&btok) {
                return Ok(btok);
            }
        }
    }
    // Loopback connect: effectively instant, done inline.
    let stream = TcpStream::connect(&shards[shard])?;
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(true)?;
    let token = *next_token;
    *next_token += 1;
    poller.add(&stream, token, Interest::Read)?;
    backends.insert(
        token,
        BackendConn {
            io: Buffered::new(stream),
            client: client_token,
            shard,
        },
    );
    if let Some(client) = clients.get_mut(&client_token) {
        client.backends.insert(shard, token);
    }
    Ok(token)
}

/// Forward `Shutdown` to every shard on fresh short-lived connections.
fn shutdown_shards(shards: &[String]) {
    let frame = encode_request(&Request::Shutdown);
    for addr in shards {
        let Some(resolved) = addr.to_socket_addrs().ok().and_then(|mut it| it.next()) else {
            continue;
        };
        let Ok(mut s) = TcpStream::connect_timeout(&resolved, Duration::from_secs(1)) else {
            continue;
        };
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        if write_frame(&mut s, &frame).is_ok() {
            let _ = read_frame(&mut s, MAX_FRAME);
        }
    }
}

/// A client vanished: close its backend connections too (a shard
/// streaming to a dropped backend cancels at its next chunk).
fn drop_client(
    poller: &Poller,
    clients: &mut HashMap<u64, ClientConn>,
    backends: &mut HashMap<u64, BackendConn>,
    token: u64,
) {
    let Some(client) = clients.remove(&token) else {
        return;
    };
    let _ = poller.remove(&client.io.stream);
    let _ = client.io.stream.shutdown(SockShutdown::Both);
    for (_, btok) in client.backends {
        if let Some(backend) = backends.remove(&btok) {
            let _ = poller.remove(&backend.io.stream);
            let _ = backend.io.stream.shutdown(SockShutdown::Both);
        }
    }
}

/// A backend died: a client mid-relay on it gets a structured error
/// and is closed (its other backends are dropped with it).
fn drop_backend(
    poller: &Poller,
    clients: &mut HashMap<u64, ClientConn>,
    backends: &mut HashMap<u64, BackendConn>,
    token: u64,
) {
    let Some(backend) = backends.remove(&token) else {
        return;
    };
    let _ = poller.remove(&backend.io.stream);
    let _ = backend.io.stream.shutdown(SockShutdown::Both);
    if let Some(client) = clients.get_mut(&backend.client) {
        client.backends.remove(&backend.shard);
        if client.relay.as_ref().is_some_and(|r| r.backend == token) {
            casted_obs::inc("serve.shard.backend_errors");
            client.relay = None;
            client
                .io
                .push_response(&Response::Err("shard connection lost".into()));
            client.close_after_flush = true;
        }
    }
}
