//! `casted-serve` — a hermetic compile-and-simulate service.
//!
//! Turns the CASTED pipeline (MiniC frontend → error-detection passes
//! → VLIW scheduler → cycle-accurate simulator → fault-injection
//! campaigns) into a long-lived loopback TCP service:
//!
//! - [`protocol`] — length-prefixed binary frames with canonical
//!   encoding (4-byte LE length, version + tag bytes, varint fields).
//! - [`cache`] — sharded content-addressed reply cache (FNV-1a of the
//!   canonical request bytes → encoded reply bytes) with LRU eviction
//!   under a byte budget.
//! - [`server`] — bounded job queue drained by the `casted_util`
//!   thread pool, explicit backpressure (`Busy` on queue-full),
//!   per-request simulated-cycle deadlines, graceful drain-then-exit.
//! - [`client`] — a minimal blocking client used by the `casted-client`
//!   CLI and the tests.
//!
//! Everything is `std`-only (no registry dependencies) and offline:
//! the server binds loopback by default and the whole stack — protocol,
//! cache, queue, pool — lives in this workspace. See `docs/SERVING.md`
//! for the operational story and the wire-format field tables.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
