//! `casted-serve` — a hermetic compile-and-simulate service.
//!
//! Turns the CASTED pipeline (MiniC frontend → error-detection passes
//! → VLIW scheduler → cycle-accurate simulator → fault-injection
//! campaigns) into a long-lived loopback TCP service:
//!
//! - [`protocol`] — length-prefixed binary frames with canonical
//!   encoding (4-byte LE length, version + tag bytes, varint fields),
//!   including the streaming-campaign extension (Progress/Cancelled
//!   frames) and structured admission rejections (Throttled/Expired).
//! - [`cache`] — sharded content-addressed reply cache (FNV-1a of the
//!   canonical request bytes → encoded reply bytes) with LRU eviction
//!   under a byte budget.
//! - [`server`] — the serving core: an event-driven connection layer
//!   (`casted_util::poll`, epoll on Linux) with a portable
//!   thread-per-connection fallback, a bounded job queue drained by
//!   the `casted_util` thread pool, explicit backpressure (`Busy` on
//!   queue-full), per-request simulated-cycle deadlines, graceful
//!   drain-then-exit.
//! - [`admission`] — opt-in per-client token-bucket quotas and
//!   deadline-aware queue drop, beyond the binary `Busy` signal.
//! - [`router`] — a front process that content-hashes each request and
//!   forwards it to one of N shard servers, so independent campaigns
//!   scale across processes without duplicating cache entries.
//! - [`client`] — a minimal blocking client (one-shot and streaming)
//!   used by the `casted-client` CLI and the tests.
//!
//! Everything is `std`-only (no registry dependencies) and offline:
//! the server binds loopback by default and the whole stack — protocol,
//! cache, queue, pool, event loop — lives in this workspace. See
//! `docs/SERVING.md` for the operational story and the wire-format
//! field tables.

pub mod admission;
pub mod cache;
pub mod client;
mod evloop;
pub mod protocol;
pub mod router;
pub mod server;
