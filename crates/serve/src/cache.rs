//! Sharded content-addressed reply cache with LRU eviction under a
//! byte budget.
//!
//! Keys are [`crate::protocol::cache_key`] digests of canonical
//! request encodings; values are the **encoded reply frames** the cold
//! path produced. Caching bytes (not decoded structs) makes the
//! serving-path guarantee trivial: a cache hit replays exactly the
//! bytes a recomputation would have written — the determinism gate in
//! `tests/serve_determinism.rs` pins this end to end.
//!
//! The map is split into [`CacheConfig::shards`] independently locked
//! shards (key → shard by high digest bits) so concurrent connection
//! threads on the hit path do not serialize behind one lock. Each
//! shard owns `byte_budget / shards` bytes; inserting past the budget
//! evicts least-recently-used entries first (recency is a per-shard
//! monotonic tick stamped on every hit). Eviction scans the shard for
//! the minimum stamp — O(entries) but only on the insert path, never
//! on the hot hit path.
//!
//! Instrumented via `casted-obs`: `serve.cache.hit`, `serve.cache.miss`,
//! `serve.cache.evict`, `serve.cache.insert` counters and the
//! `serve.cache.bytes` gauge.

use std::collections::HashMap;

use casted_util::Mutex;

/// Cache sizing.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Lock shards (rounded up to a power of two, at least 1).
    pub shards: usize,
    /// Total byte budget across all shards (0 disables caching).
    pub byte_budget: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            byte_budget: 32 << 20,
        }
    }
}

struct Entry {
    bytes: Vec<u8>,
    stamp: u64,
}

/// Bookkeeping overhead charged per entry on top of the payload, so a
/// flood of tiny replies still respects the budget.
const ENTRY_OVERHEAD: usize = 64;

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn cost(bytes: &[u8]) -> usize {
        bytes.len() + ENTRY_OVERHEAD
    }

    fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(&key)?;
        e.stamp = tick;
        Some(e.bytes.clone())
    }

    /// Insert, evicting LRU entries until the shard fits its budget.
    /// Returns the number of evictions.
    fn insert(&mut self, key: u64, bytes: Vec<u8>, budget: usize) -> u64 {
        let cost = Self::cost(&bytes);
        if cost > budget {
            return 0; // An oversized reply just isn't cached.
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                bytes,
                stamp: self.tick,
            },
        ) {
            self.bytes -= Self::cost(&old.bytes);
        }
        self.bytes += cost;
        let mut evicted = 0;
        while self.bytes > budget {
            // Never evict the entry just inserted (it holds the
            // maximum stamp anyway; the filter makes that a guarantee
            // rather than a consequence).
            let victim = self
                .map
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { break };
            let gone = self.map.remove(&victim).unwrap();
            self.bytes -= Self::cost(&gone.bytes);
            evicted += 1;
        }
        evicted
    }
}

/// The sharded content-addressed reply cache.
pub struct Cache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    mask: u64,
}

impl Cache {
    /// Build a cache from its config.
    pub fn new(cfg: &CacheConfig) -> Cache {
        let n = cfg.shards.max(1).next_power_of_two();
        Cache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: cfg.byte_budget / n,
            mask: n as u64 - 1,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits: FNV's low bits are the least mixed.
        &self.shards[((key >> 40) & self.mask) as usize]
    }

    /// Look up a reply. Records `serve.cache.{hit,miss}`.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let out = self.shard(key).lock().get(key);
        casted_obs::inc(if out.is_some() {
            "serve.cache.hit"
        } else {
            "serve.cache.miss"
        });
        out
    }

    /// Insert a reply, evicting LRU entries past the byte budget.
    /// Records `serve.cache.insert` / `serve.cache.evict` and the
    /// `serve.cache.bytes` gauge.
    pub fn insert(&self, key: u64, bytes: Vec<u8>) {
        let evicted = self.shard(key).lock().insert(key, bytes, self.shard_budget);
        casted_obs::inc("serve.cache.insert");
        if evicted > 0 {
            casted_obs::add("serve.cache.evict", evicted);
        }
        casted_obs::gauge_set("serve.cache.bytes", self.bytes() as u64);
    }

    /// Total cached payload bytes (incl. per-entry overhead).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Total cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(budget: usize) -> Cache {
        Cache::new(&CacheConfig {
            shards: 1,
            byte_budget: budget,
        })
    }

    #[test]
    fn get_after_insert_returns_the_bytes() {
        let c = tiny(4096);
        assert_eq!(c.get(1), None);
        c.insert(1, vec![1, 2, 3]);
        assert_eq!(c.get(1), Some(vec![1, 2, 3]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_replaces_and_keeps_accounting() {
        let c = tiny(4096);
        c.insert(1, vec![0; 100]);
        let b0 = c.bytes();
        c.insert(1, vec![0; 10]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), b0 - 90);
    }

    #[test]
    fn eviction_is_lru_under_byte_budget() {
        // Budget fits two ~(100+overhead) entries, not three.
        let c = tiny(2 * (100 + ENTRY_OVERHEAD) + 20);
        c.insert(1, vec![0; 100]);
        c.insert(2, vec![0; 100]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.insert(3, vec![0; 100]);
        assert!(c.get(1).is_some(), "recently-used entry survived");
        assert_eq!(c.get(2), None, "LRU entry evicted");
        assert!(c.get(3).is_some(), "fresh entry present");
        assert!(c.bytes() <= 2 * (100 + ENTRY_OVERHEAD) + 20);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let c = tiny(64);
        c.insert(1, vec![0; 1000]);
        assert_eq!(c.get(1), None);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = tiny(0);
        c.insert(1, vec![1]);
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn shards_partition_keys() {
        let c = Cache::new(&CacheConfig {
            shards: 8,
            byte_budget: 1 << 20,
        });
        for k in 0..1000u64 {
            c.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), vec![0; 8]);
        }
        assert_eq!(c.len(), 1000);
        let occupied = c.shards.iter().filter(|s| !s.lock().map.is_empty()).count();
        assert!(occupied >= 2, "keys should spread over shards, got {occupied}");
    }
}
