//! `casted-router` — front a fleet of `casted-serve` shards.
//!
//! ```text
//! casted-router [--addr HOST:PORT] [--loops N] --shard HOST:PORT [--shard HOST:PORT ...]
//! ```
//!
//! Routes each work request to `Fnv64(request bytes) % shards` — the
//! same content hash the reply cache keys on — and relays the shard's
//! reply frames verbatim, so routed replies are byte-identical to a
//! single server's and no cache entry is duplicated across shards.
//! Prints `casted-router listening on ADDR` and serves until a client
//! sends `Shutdown`, which it forwards to every shard before draining
//! and exiting 0. Linux-only (event-driven; no threaded fallback).

use std::process::ExitCode;

use casted_serve::router::{Router, RouterConfig};

fn usage() -> ! {
    eprintln!(
        "usage: casted-router [--addr HOST:PORT] [--loops N] \
         --shard HOST:PORT [--shard HOST:PORT ...]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let Some(v) = v else {
        eprintln!("casted-router: {flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("casted-router: bad value {v:?} for {flag}");
        usage();
    })
}

fn main() -> ExitCode {
    let mut cfg = RouterConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse("--addr", args.next()),
            "--loops" => cfg.loops = parse("--loops", args.next()),
            "--shard" => cfg.shards.push(parse("--shard", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("casted-router: unknown flag {other}");
                usage();
            }
        }
    }
    if cfg.shards.is_empty() {
        eprintln!("casted-router: at least one --shard is required");
        usage();
    }

    let router = match Router::start(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("casted-router: start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scraped by the smoke tests and the bench harness; keep stable.
    println!("casted-router listening on {}", router.addr());

    router.wait();
    ExitCode::SUCCESS
}
