//! `casted-client` — command-line client for `casted-serve`.
//!
//! ```text
//! casted-client --addr HOST:PORT <command> [options]
//!
//! commands:
//!   ping                                  liveness probe
//!   compile  --file F | --source S        scheduled-program statistics
//!   simulate --file F | --source S        fault-free simulation summary
//!   inject   --file F | --source S        Monte-Carlo fault campaign
//!   counters                              server counter snapshot
//!   shutdown                              graceful drain-then-exit
//!   bench    --file F | --source S        closed-loop load generator
//!
//! shared job options:   --scheme noed|sced|dced|casted  --issue N  --delay N
//! simulate option:      --max-cycles N
//! inject options:       --trials N  --seed N  --engine reference|checkpointed|batched
//! bench options:        --requests N (per conn)  --conns N  --out PATH
//! ```
//!
//! `bench` drives the cached hot path: one warm-up request populates
//! the server's content-addressed cache, then `--conns` connections
//! issue `--requests` identical requests each, closed-loop (next
//! request only after the previous reply). Results land in
//! `BENCH_serve.json` at the workspace root.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use casted::service_api::JobSpec;
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::client::Client;
use casted_serve::protocol::{encode_request, Request, Response};

fn usage() -> ! {
    eprintln!(
        "usage: casted-client --addr HOST:PORT \
         <ping|compile|simulate|inject|counters|shutdown|bench> [options]\n\
         job options: --file F | --source S  --scheme noed|sced|dced|casted  --issue N  --delay N\n\
         simulate: --max-cycles N    inject: --trials N --seed N --engine reference|checkpointed|batched\n\
         bench: --requests N --conns N --out PATH"
    );
    std::process::exit(2);
}

fn parse_scheme(s: &str) -> Scheme {
    match s {
        "noed" => Scheme::Noed,
        "sced" => Scheme::Sced,
        "dced" => Scheme::Dced,
        "casted" => Scheme::Casted,
        other => {
            eprintln!("casted-client: unknown scheme {other:?}");
            usage();
        }
    }
}

struct Opts {
    addr: String,
    cmd: String,
    spec: JobSpec,
    have_source: bool,
    max_cycles: u64,
    trials: u64,
    seed: u64,
    engine: Engine,
    requests: u64,
    conns: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut o = Opts {
        addr: String::new(),
        cmd: String::new(),
        spec: JobSpec {
            source: String::new(),
            scheme: Scheme::Casted,
            issue: 2,
            delay: 2,
        },
        have_source: false,
        max_cycles: u64::MAX,
        trials: 100,
        seed: 0xCA57ED,
        engine: Engine::default(),
        requests: 20_000,
        conns: 4,
        out: format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")),
    };
    let mut args = std::env::args().skip(1);
    let need = |flag: &str, v: Option<String>| -> String {
        v.unwrap_or_else(|| {
            eprintln!("casted-client: {flag} needs a value");
            usage();
        })
    };
    // Decimal or 0x-prefixed hex, so seeds copied from REPLAY tokens
    // and docs (`--seed 0xCA57ED`) work as-is.
    let parse_num = |flag: &str, v: String| -> u64 {
        let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => v.parse().ok(),
        };
        parsed.unwrap_or_else(|| {
            eprintln!("casted-client: bad value {v:?} for {flag}");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => o.addr = need("--addr", args.next()),
            "--file" => {
                let path = need("--file", args.next());
                o.spec.source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("casted-client: cannot read {path}: {e}");
                    std::process::exit(2);
                });
                o.have_source = true;
            }
            "--source" => {
                o.spec.source = need("--source", args.next());
                o.have_source = true;
            }
            "--scheme" => o.spec.scheme = parse_scheme(&need("--scheme", args.next())),
            "--issue" => o.spec.issue = parse_num("--issue", need("--issue", args.next())) as usize,
            "--delay" => o.spec.delay = parse_num("--delay", need("--delay", args.next())) as u32,
            "--max-cycles" => o.max_cycles = parse_num("--max-cycles", need("--max-cycles", args.next())),
            "--trials" => o.trials = parse_num("--trials", need("--trials", args.next())),
            "--seed" => o.seed = parse_num("--seed", need("--seed", args.next())),
            "--engine" => {
                let v = need("--engine", args.next());
                o.engine = Engine::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "casted-client: unknown engine {v:?} (accepted values: {})",
                        Engine::ACCEPTED
                    );
                    usage();
                });
            }
            "--requests" => o.requests = parse_num("--requests", need("--requests", args.next())),
            "--conns" => o.conns = parse_num("--conns", need("--conns", args.next())) as usize,
            "--out" => o.out = need("--out", args.next()),
            "--help" | "-h" => usage(),
            cmd if o.cmd.is_empty() && !cmd.starts_with('-') => o.cmd = cmd.to_string(),
            other => {
                eprintln!("casted-client: unknown argument {other}");
                usage();
            }
        }
    }
    if o.addr.is_empty() || o.cmd.is_empty() {
        eprintln!("casted-client: --addr and a command are required");
        usage();
    }
    o
}

fn print_response(resp: &Response) -> ExitCode {
    match resp {
        Response::Pong => println!("pong"),
        Response::Compiled(c) => {
            println!("bundles: {}", c.bundles);
            println!("nop_slots: {}", c.nop_slots);
            println!("cross_cluster_edges: {}", c.cross_cluster_edges);
            println!("spilled: {}", c.spilled);
            println!("code_growth_permille: {}", c.code_growth_permille);
            let occ: Vec<String> = c.occupancy.iter().map(|n| n.to_string()).collect();
            println!("occupancy: [{}]", occ.join(", "));
        }
        Response::Simulated(s) => {
            println!("cycles: {}", s.cycles);
            println!("dyn_insns: {}", s.dyn_insns);
            println!("bundles: {}", s.bundles);
            println!("stall_cycles: {}", s.stall_cycles);
            println!("cross_reads: {}", s.cross_reads);
            println!("exit_code: {}", s.exit_code);
            println!("stream_len: {}", s.stream_len);
            println!("stream_digest: {:#018x}", s.stream_digest);
        }
        Response::Injected(i) => {
            println!("trials: {}", i.trials);
            let labels = ["benign", "detected", "exception", "data_corrupt", "timeout"];
            for (label, count) in labels.iter().zip(i.counts.iter()) {
                println!("{label}: {count}");
            }
            println!("golden_cycles: {}", i.golden_cycles);
            println!("golden_dyn: {}", i.golden_dyn);
        }
        Response::Busy => {
            println!("busy");
            return ExitCode::from(3);
        }
        Response::Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        Response::Counters(json) => print!("{json}"),
        Response::ShuttingDown => println!("shutting down"),
    }
    ExitCode::SUCCESS
}

struct StagedBench {
    iterations: u64,
    cold_elapsed: f64,
    warm_elapsed: f64,
    cold_per_sec: f64,
    warm_per_sec: f64,
}

/// Compile the bench workload through the content-addressed stage
/// pipeline, cold (fresh artifact store, every stage misses) and warm
/// (pre-warmed store, every stage hits). Both passes run the full
/// source→scheduled-program chain; the warm pass replays the stored
/// artifacts instead of re-running lex/parse/sema/codegen/ED/schedule/
/// regalloc, which is where the speedup comes from.
fn bench_staged_compile(o: &Opts) -> Result<StagedBench, String> {
    use casted::ir::MachineConfig;
    use casted::stages::ArtifactPipeline;

    const ITERS: u64 = 32;
    let config = MachineConfig::itanium2_like(o.spec.issue, o.spec.delay);
    let base = std::env::temp_dir().join(format!(
        "casted-client-bench-{}-{:x}",
        std::process::id(),
        casted::util::hash::fnv1a(o.spec.source.as_bytes())
    ));
    let _ = std::fs::remove_dir_all(&base);

    // Cold: one fresh store per iteration, created before the clock
    // starts so directory setup is not billed to the compiler.
    let cold_dirs: Vec<std::path::PathBuf> =
        (0..ITERS).map(|i| base.join(format!("cold-{i}"))).collect();
    for d in &cold_dirs {
        std::fs::create_dir_all(d).map_err(|e| format!("create {}: {e}", d.display()))?;
    }
    let start = Instant::now();
    for d in &cold_dirs {
        let p = ArtifactPipeline::open(d).map_err(|e| e.to_string())?;
        p.prepare("bench", &o.spec.source, o.spec.scheme, &config)
            .map_err(|e| e.to_string())?;
    }
    let cold_elapsed = start.elapsed().as_secs_f64();

    // Warm: one store, populated by an untimed pass, then replayed.
    let warm_dir = base.join("warm");
    std::fs::create_dir_all(&warm_dir).map_err(|e| e.to_string())?;
    let p = ArtifactPipeline::open(&warm_dir).map_err(|e| e.to_string())?;
    p.prepare("bench", &o.spec.source, o.spec.scheme, &config)
        .map_err(|e| e.to_string())?;
    let start = Instant::now();
    for _ in 0..ITERS {
        let (_, stats) = p
            .prepare("bench", &o.spec.source, o.spec.scheme, &config)
            .map_err(|e| e.to_string())?;
        if stats.miss != 0 {
            return Err(format!("warm pass missed {} stages", stats.miss));
        }
    }
    let warm_elapsed = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&base);

    Ok(StagedBench {
        iterations: ITERS,
        cold_elapsed,
        warm_elapsed,
        cold_per_sec: ITERS as f64 / cold_elapsed.max(1e-9),
        warm_per_sec: ITERS as f64 / warm_elapsed.max(1e-9),
    })
}

fn bench(o: &Opts) -> ExitCode {
    let req = Request::Simulate {
        spec: o.spec.clone(),
        max_cycles: o.max_cycles,
    };
    let payload = encode_request(&req);

    // Warm-up: the first request computes and populates the cache;
    // everything after measures the cached hot path.
    let mut warm = match Client::connect(&o.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("casted-client: connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm_reply = match warm.request(&req) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("casted-client: warm-up failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Response::Err(msg) = warm_reply {
        eprintln!("casted-client: warm-up request rejected: {msg}");
        return ExitCode::FAILURE;
    }

    let start = Instant::now();
    let totals: Vec<Option<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..o.conns)
            .map(|_| {
                let payload = &payload;
                let addr = &o.addr;
                let n = o.requests;
                s.spawn(move || -> Option<u64> {
                    let mut c = Client::connect(addr).ok()?;
                    let mut done = 0u64;
                    for _ in 0..n {
                        c.request_raw(payload).ok()?;
                        done += 1;
                    }
                    Some(done)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().ok().flatten()).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    if totals.iter().any(|t| t.is_none()) {
        eprintln!("casted-client: a bench connection failed");
        return ExitCode::FAILURE;
    }
    let total: u64 = totals.iter().map(|t| t.unwrap()).sum();
    let rps = total as f64 / elapsed;
    println!("requests: {total}");
    println!("conns: {}", o.conns);
    println!("elapsed_s: {elapsed:.3}");
    println!("requests_per_sec: {rps:.0}");

    let staged = match bench_staged_compile(o) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("casted-client: staged-compile bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "staged_compile cold: {:.0}/s  warm: {:.0}/s  ({:.1}x)",
        staged.cold_per_sec,
        staged.warm_per_sec,
        staged.warm_per_sec / staged.cold_per_sec
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_cached_throughput\",\n  \"workload\": \"simulate {} issue {} delay {} (cached)\",\n  \"conns\": {},\n  \"requests\": {},\n  \"elapsed_s\": {:.3},\n  \"requests_per_sec\": {:.0},\n  \"staged_compile\": {{\n    \"iterations\": {},\n    \"cold_elapsed_s\": {:.4},\n    \"warm_elapsed_s\": {:.4},\n    \"cold_compiles_per_sec\": {:.0},\n    \"warm_compiles_per_sec\": {:.0},\n    \"warm_over_cold\": {:.2}\n  }}\n}}\n",
        match o.spec.scheme {
            Scheme::Noed => "noed",
            Scheme::Sced => "sced",
            Scheme::Dced => "dced",
            Scheme::Casted => "casted",
        },
        o.spec.issue,
        o.spec.delay,
        o.conns,
        total,
        elapsed,
        rps,
        staged.iterations,
        staged.cold_elapsed,
        staged.warm_elapsed,
        staged.cold_per_sec,
        staged.warm_per_sec,
        staged.warm_per_sec / staged.cold_per_sec,
    );
    match std::fs::File::create(&o.out).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {}", o.out),
        Err(e) => {
            eprintln!("casted-client: cannot write {}: {e}", o.out);
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let o = parse_args();
    let needs_source = matches!(o.cmd.as_str(), "compile" | "simulate" | "inject" | "bench");
    if needs_source && !o.have_source {
        eprintln!("casted-client: {} needs --file or --source", o.cmd);
        usage();
    }

    if o.cmd == "bench" {
        return bench(&o);
    }

    let req = match o.cmd.as_str() {
        "ping" => Request::Ping,
        "compile" => Request::Compile {
            spec: o.spec.clone(),
        },
        "simulate" => Request::Simulate {
            spec: o.spec.clone(),
            max_cycles: o.max_cycles,
        },
        "inject" => Request::Inject {
            spec: o.spec.clone(),
            trials: o.trials,
            seed: o.seed,
            engine: o.engine,
        },
        "counters" => Request::Counters,
        "shutdown" => Request::Shutdown,
        other => {
            eprintln!("casted-client: unknown command {other:?}");
            usage();
        }
    };

    let mut client = match Client::connect(&o.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("casted-client: connect to {} failed: {e}", o.addr);
            return ExitCode::FAILURE;
        }
    };
    match client.request(&req) {
        Ok(resp) => print_response(&resp),
        Err(e) => {
            eprintln!("casted-client: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}
