//! `casted-client` — command-line client for `casted-serve`.
//!
//! ```text
//! casted-client --addr HOST:PORT <command> [options]
//!
//! commands:
//!   ping                                  liveness probe
//!   compile  --file F | --source S        scheduled-program statistics
//!   simulate --file F | --source S        fault-free simulation summary
//!   inject   --file F | --source S        Monte-Carlo fault campaign
//!   counters                              server counter snapshot
//!   shutdown                              graceful drain-then-exit
//!   bench    --file F | --source S        serving benchmark (spawns its own fleet)
//!
//! shared job options:  --scheme noed|sced|dced|casted|tmred|rbed  --issue N  --delay N
//! simulate option:     --max-cycles N
//! inject options:      --trials N  --seed N  --engine reference|checkpointed|batched
//!                      --stream  --every N  --cancel-after N
//! bench options:       --requests N (per conn per sample)  --conns N
//!                      --samples N  --out PATH
//! ```
//!
//! `inject --stream` uses the streaming protocol extension: the server
//! emits an incremental tally every `--every` trials (server default
//! if omitted) and the final frame is byte-identical to the
//! non-streaming reply. `--cancel-after N` sends `Cancel` once `N`
//! trials are done; the campaign stops at the next chunk boundary and
//! the partial tally is printed.
//!
//! `bench` needs no `--addr`: it spawns its own fleet next to the
//! current executable — a thread-per-connection baseline server, an
//! event-driven server, and routed shard fleets of 1, 2 and 4 event
//! shards — then measures cached throughput on each over `--samples`
//! interleaved rounds (median/MAD), plus a cold-path (cache-miss) row.
//! Results land in `BENCH_serve.json` at the workspace root.

use std::io::{BufRead, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use casted::service_api::JobSpec;
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::client::Client;
use casted_serve::protocol::{encode_request, Request, Response};
use casted_util::bench::median_mad;

fn usage() -> ! {
    eprintln!(
        "usage: casted-client --addr HOST:PORT \
         <ping|compile|simulate|inject|counters|shutdown|bench> [options]\n\
         job options: --file F | --source S  --scheme noed|sced|dced|casted|tmred|rbed  --issue N  --delay N\n\
         simulate: --max-cycles N\n\
         inject: --trials N --seed N --engine reference|checkpointed|batched\n\
         \x20       --stream --every N --cancel-after N\n\
         bench: --requests N --conns N --samples N --out PATH (no --addr; spawns its own fleet)"
    );
    std::process::exit(2);
}

fn parse_scheme(s: &str) -> Scheme {
    // Registry-backed parse: case-insensitive, accepts aliases.
    Scheme::parse(s).unwrap_or_else(|e| {
        eprintln!("casted-client: {e}");
        usage();
    })
}

struct Opts {
    addr: String,
    cmd: String,
    spec: JobSpec,
    have_source: bool,
    max_cycles: u64,
    trials: u64,
    seed: u64,
    engine: Engine,
    stream: bool,
    every: u64,
    cancel_after: Option<u64>,
    requests: u64,
    conns: usize,
    samples: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut o = Opts {
        addr: String::new(),
        cmd: String::new(),
        spec: JobSpec {
            source: String::new(),
            scheme: Scheme::Casted,
            issue: 2,
            delay: 2,
        },
        have_source: false,
        max_cycles: u64::MAX,
        trials: 100,
        seed: 0xCA57ED,
        engine: Engine::default(),
        stream: false,
        every: 0,
        cancel_after: None,
        requests: 400,
        conns: 16,
        samples: 5,
        out: format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")),
    };
    let mut args = std::env::args().skip(1);
    let need = |flag: &str, v: Option<String>| -> String {
        v.unwrap_or_else(|| {
            eprintln!("casted-client: {flag} needs a value");
            usage();
        })
    };
    // Decimal or 0x-prefixed hex, so seeds copied from REPLAY tokens
    // and docs (`--seed 0xCA57ED`) work as-is.
    let parse_num = |flag: &str, v: String| -> u64 {
        let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => v.parse().ok(),
        };
        parsed.unwrap_or_else(|| {
            eprintln!("casted-client: bad value {v:?} for {flag}");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => o.addr = need("--addr", args.next()),
            "--file" => {
                let path = need("--file", args.next());
                o.spec.source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("casted-client: cannot read {path}: {e}");
                    std::process::exit(2);
                });
                o.have_source = true;
            }
            "--source" => {
                o.spec.source = need("--source", args.next());
                o.have_source = true;
            }
            "--scheme" => o.spec.scheme = parse_scheme(&need("--scheme", args.next())),
            "--issue" => o.spec.issue = parse_num("--issue", need("--issue", args.next())) as usize,
            "--delay" => o.spec.delay = parse_num("--delay", need("--delay", args.next())) as u32,
            "--max-cycles" => o.max_cycles = parse_num("--max-cycles", need("--max-cycles", args.next())),
            "--trials" => o.trials = parse_num("--trials", need("--trials", args.next())),
            "--seed" => o.seed = parse_num("--seed", need("--seed", args.next())),
            "--engine" => {
                let v = need("--engine", args.next());
                o.engine = Engine::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "casted-client: unknown engine {v:?} (accepted values: {})",
                        Engine::ACCEPTED
                    );
                    usage();
                });
            }
            "--stream" => o.stream = true,
            "--every" => o.every = parse_num("--every", need("--every", args.next())),
            "--cancel-after" => {
                o.cancel_after =
                    Some(parse_num("--cancel-after", need("--cancel-after", args.next())))
            }
            "--requests" => o.requests = parse_num("--requests", need("--requests", args.next())),
            "--conns" => o.conns = parse_num("--conns", need("--conns", args.next())) as usize,
            "--samples" => o.samples = parse_num("--samples", need("--samples", args.next())) as usize,
            "--out" => o.out = need("--out", args.next()),
            "--help" | "-h" => usage(),
            cmd if o.cmd.is_empty() && !cmd.starts_with('-') => o.cmd = cmd.to_string(),
            other => {
                eprintln!("casted-client: unknown argument {other}");
                usage();
            }
        }
    }
    if o.cmd.is_empty() || (o.addr.is_empty() && o.cmd != "bench") {
        eprintln!("casted-client: --addr and a command are required (bench needs no --addr)");
        usage();
    }
    o
}

fn print_tally(trials: u64, counts: &[u64; 6]) {
    println!("trials: {trials}");
    let labels = [
        "benign",
        "detected",
        "exception",
        "data_corrupt",
        "timeout",
        "corrected",
    ];
    for (label, count) in labels.iter().zip(counts.iter()) {
        println!("{label}: {count}");
    }
}

fn print_response(resp: &Response) -> ExitCode {
    match resp {
        Response::Pong => println!("pong"),
        Response::Compiled(c) => {
            println!("bundles: {}", c.bundles);
            println!("nop_slots: {}", c.nop_slots);
            println!("cross_cluster_edges: {}", c.cross_cluster_edges);
            println!("spilled: {}", c.spilled);
            println!("code_growth_permille: {}", c.code_growth_permille);
            let occ: Vec<String> = c.occupancy.iter().map(|n| n.to_string()).collect();
            println!("occupancy: [{}]", occ.join(", "));
        }
        Response::Simulated(s) => {
            println!("cycles: {}", s.cycles);
            println!("dyn_insns: {}", s.dyn_insns);
            println!("bundles: {}", s.bundles);
            println!("stall_cycles: {}", s.stall_cycles);
            println!("cross_reads: {}", s.cross_reads);
            println!("exit_code: {}", s.exit_code);
            println!("stream_len: {}", s.stream_len);
            println!("stream_digest: {:#018x}", s.stream_digest);
        }
        Response::Injected(i) => {
            print_tally(i.trials, &i.counts);
            println!("golden_cycles: {}", i.golden_cycles);
            println!("golden_dyn: {}", i.golden_dyn);
        }
        Response::Busy => {
            println!("busy");
            return ExitCode::from(3);
        }
        Response::Throttled { retry_after_ms } => {
            println!("throttled; retry after {retry_after_ms} ms");
            return ExitCode::from(3);
        }
        Response::Expired => {
            println!("expired in queue");
            return ExitCode::from(3);
        }
        Response::Progress { done, counts } => {
            // Not terminal; only reachable through the streaming path,
            // which prints these itself. Kept for completeness.
            println!("progress: {done} {counts:?}");
        }
        Response::Cancelled { done, counts } => {
            println!("cancelled");
            print_tally(*done, counts);
        }
        Response::Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        Response::Counters(json) => print!("{json}"),
        Response::ShuttingDown => println!("shutting down"),
    }
    ExitCode::SUCCESS
}

/// `inject --stream`: progress lines per chunk, optional cancellation.
fn inject_stream(o: &Opts) -> ExitCode {
    let req = Request::InjectStream {
        spec: o.spec.clone(),
        trials: o.trials,
        seed: o.seed,
        engine: o.engine,
        every: o.every,
    };
    let mut client = match Client::connect(&o.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("casted-client: connect to {} failed: {e}", o.addr);
            return ExitCode::FAILURE;
        }
    };
    let cancel_after = o.cancel_after;
    let terminal = client.request_stream(&req, &mut |done, counts| {
        println!(
            "progress: {done} trials  [benign {} detected {} exception {} data_corrupt {} timeout {}]",
            counts[0], counts[1], counts[2], counts[3], counts[4]
        );
        cancel_after.is_none_or(|n| done < n)
    });
    match terminal {
        Ok(resp) => print_response(&resp),
        Err(e) => {
            eprintln!("casted-client: stream failed: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// bench
// ---------------------------------------------------------------------------

struct StagedBench {
    iterations: u64,
    cold_elapsed: f64,
    warm_elapsed: f64,
    cold_per_sec: f64,
    warm_per_sec: f64,
}

/// Compile the bench workload through the content-addressed stage
/// pipeline, cold (fresh artifact store, every stage misses) and warm
/// (pre-warmed store, every stage hits). Both passes run the full
/// source→scheduled-program chain; the warm pass replays the stored
/// artifacts instead of re-running lex/parse/sema/codegen/ED/schedule/
/// regalloc, which is where the speedup comes from.
fn bench_staged_compile(o: &Opts) -> Result<StagedBench, String> {
    use casted::ir::MachineConfig;
    use casted::stages::ArtifactPipeline;

    const ITERS: u64 = 32;
    let config = MachineConfig::itanium2_like(o.spec.issue, o.spec.delay);
    let base = std::env::temp_dir().join(format!(
        "casted-client-bench-{}-{:x}",
        std::process::id(),
        casted::util::hash::fnv1a(o.spec.source.as_bytes())
    ));
    let _ = std::fs::remove_dir_all(&base);

    // Cold: one fresh store per iteration, created before the clock
    // starts so directory setup is not billed to the compiler.
    let cold_dirs: Vec<std::path::PathBuf> =
        (0..ITERS).map(|i| base.join(format!("cold-{i}"))).collect();
    for d in &cold_dirs {
        std::fs::create_dir_all(d).map_err(|e| format!("create {}: {e}", d.display()))?;
    }
    let start = Instant::now();
    for d in &cold_dirs {
        let p = ArtifactPipeline::open(d).map_err(|e| e.to_string())?;
        p.prepare("bench", &o.spec.source, o.spec.scheme, &config)
            .map_err(|e| e.to_string())?;
    }
    let cold_elapsed = start.elapsed().as_secs_f64();

    // Warm: one store, populated by an untimed pass, then replayed.
    let warm_dir = base.join("warm");
    std::fs::create_dir_all(&warm_dir).map_err(|e| e.to_string())?;
    let p = ArtifactPipeline::open(&warm_dir).map_err(|e| e.to_string())?;
    p.prepare("bench", &o.spec.source, o.spec.scheme, &config)
        .map_err(|e| e.to_string())?;
    let start = Instant::now();
    for _ in 0..ITERS {
        let (_, stats) = p
            .prepare("bench", &o.spec.source, o.spec.scheme, &config)
            .map_err(|e| e.to_string())?;
        if stats.miss != 0 {
            return Err(format!("warm pass missed {} stages", stats.miss));
        }
    }
    let warm_elapsed = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&base);

    Ok(StagedBench {
        iterations: ITERS,
        cold_elapsed,
        warm_elapsed,
        cold_per_sec: ITERS as f64 / cold_elapsed.max(1e-9),
        warm_per_sec: ITERS as f64 / warm_elapsed.max(1e-9),
    })
}

/// The bench's private server fleet. Children are killed on drop so a
/// failed run never leaves orphan processes behind.
struct Fleet {
    children: Vec<(String, std::process::Child)>,
}

impl Fleet {
    fn new() -> Fleet {
        Fleet {
            children: Vec::new(),
        }
    }

    /// Spawn `bin args...` and scrape `... listening on ADDR` from its
    /// first stdout line.
    fn spawn(&mut self, bin: &Path, args: &[String], name: &str) -> Result<String, String> {
        let mut child = std::process::Command::new(bin)
            .args(args)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {name} ({}): {e}", bin.display()))?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        let read = std::io::BufReader::new(stdout).read_line(&mut line);
        self.children.push((name.to_string(), child));
        match read {
            Ok(n) if n > 0 => {}
            _ => return Err(format!("{name} exited before announcing its address")),
        }
        match line.trim().rsplit(" listening on ").next() {
            Some(addr) if line.contains(" listening on ") => Ok(addr.to_string()),
            _ => Err(format!("{name} printed unexpected banner {line:?}")),
        }
    }

    /// Send `Shutdown` to every address, then wait for every child to
    /// drain and exit 0 (routers forward the shutdown to their shards).
    fn shutdown(mut self, signal_addrs: &[String]) -> Result<(), String> {
        for addr in signal_addrs {
            let mut c = Client::connect(addr).map_err(|e| format!("shutdown {addr}: {e}"))?;
            match c.request(&Request::Shutdown) {
                Ok(Response::ShuttingDown) => {}
                Ok(other) => return Err(format!("shutdown {addr}: unexpected {other:?}")),
                Err(e) => return Err(format!("shutdown {addr}: {e}")),
            }
        }
        for (name, mut child) in std::mem::take(&mut self.children) {
            let status = child.wait().map_err(|e| format!("wait {name}: {e}"))?;
            if !status.success() {
                return Err(format!("{name} exited with {status}"));
            }
        }
        Ok(())
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Closed-loop load: `conns` connections each issue `per_conn`
/// requests cycling through `payloads`, next request only after the
/// previous reply. Returns requests/sec.
fn run_load(addr: &str, conns: usize, payloads: &[Vec<u8>], per_conn: u64) -> Result<f64, String> {
    let start = Instant::now();
    let results: Vec<Result<(), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|conn_id| {
                s.spawn(move || -> Result<(), String> {
                    let mut c =
                        Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    for k in 0..per_conn {
                        let p = &payloads[(conn_id + k as usize) % payloads.len()];
                        let reply = c.request_raw(p).map_err(|e| e.to_string())?;
                        // version byte + tag: anything but Simulated(3)
                        // means the fleet is misbehaving — fail loudly
                        // rather than benchmark an error path.
                        if reply.get(1) != Some(&3) {
                            return Err(format!(
                                "unexpected reply tag {:?} from {addr}",
                                reply.get(1)
                            ));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("bench thread panicked".into())))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    for r in results {
        r?;
    }
    Ok((conns as u64 * per_conn) as f64 / elapsed.max(1e-9))
}

/// Cache-miss load: every request carries a source string that has
/// never been seen (unique per sample/connection/iteration), so each
/// one runs the full compile+simulate path.
fn run_load_cold(
    addr: &str,
    conns: usize,
    per_conn: u64,
    sample: usize,
    max_cycles: u64,
) -> Result<f64, String> {
    let start = Instant::now();
    let results: Vec<Result<(), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|conn_id| {
                s.spawn(move || -> Result<(), String> {
                    let mut c =
                        Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    for k in 0..per_conn {
                        let uniq =
                            (sample as u64) * 1_000_000_000 + (conn_id as u64) * 1_000_000 + k;
                        let spec = JobSpec {
                            source: format!(
                                "fn main() {{ var s: int = {uniq}; \
                                 for i in 0..8 {{ s = s + i * i; }} out(s); }}"
                            ),
                            scheme: Scheme::Casted,
                            issue: 2,
                            delay: 2,
                        };
                        let req = Request::Simulate { spec, max_cycles };
                        let reply =
                            c.request_raw(&encode_request(&req)).map_err(|e| e.to_string())?;
                        if reply.get(1) != Some(&3) {
                            return Err(format!(
                                "unexpected cold reply tag {:?} from {addr}",
                                reply.get(1)
                            ));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("bench thread panicked".into())))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    for r in results {
        r?;
    }
    Ok((conns as u64 * per_conn) as f64 / elapsed.max(1e-9))
}

struct Row {
    samples: Vec<f64>,
}

impl Row {
    fn stats(&self) -> (f64, f64) {
        let mut xs = self.samples.clone();
        median_mad(&mut xs)
    }

    fn json(&self) -> String {
        let (med, mad) = self.stats();
        let samples: Vec<String> = self.samples.iter().map(|x| format!("{x:.0}")).collect();
        format!(
            "{{ \"median_rps\": {med:.0}, \"mad_rps\": {mad:.0}, \"samples_rps\": [{}] }}",
            samples.join(", ")
        )
    }
}

/// How many distinct (pre-warmed) cached requests the shard-curve
/// workload cycles through, so requests spread across all shards.
const SHARD_KEYS: usize = 64;

fn run_bench(o: &Opts) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let bin_dir: PathBuf = exe
        .parent()
        .ok_or_else(|| "current_exe has no parent".to_string())?
        .to_path_buf();
    let serve_bin = bin_dir.join("casted-serve");
    let router_bin = bin_dir.join("casted-router");
    for bin in [&serve_bin, &router_bin] {
        if !bin.exists() {
            return Err(format!(
                "{} not found; build the whole workspace first",
                bin.display()
            ));
        }
    }

    let arg = |s: &str| s.to_string();
    let mut fleet = Fleet::new();
    eprintln!("bench: spawning fleet (baseline, event, 1/2/4-shard)...");
    let threads_addr = fleet.spawn(
        &serve_bin,
        &[arg("--conn-model"), arg("threads")],
        "serve-threads",
    )?;
    let event_addr = fleet.spawn(
        &serve_bin,
        &[arg("--conn-model"), arg("event")],
        "serve-event",
    )?;
    // Shard fleets: each curve point gets its own shards + router so
    // caches are independent and shutdown is per-fleet.
    let mut router_addrs: Vec<(usize, String)> = Vec::new();
    for n in [1usize, 2, 4] {
        let mut router_args: Vec<String> = vec![arg("--addr"), arg("127.0.0.1:0")];
        for i in 0..n {
            let shard_addr = fleet.spawn(
                &serve_bin,
                &[arg("--conn-model"), arg("event"), arg("--workers"), arg("2")],
                &format!("shard-{n}x-{i}"),
            )?;
            router_args.push(arg("--shard"));
            router_args.push(shard_addr);
        }
        let router_addr = fleet.spawn(&router_bin, &router_args, &format!("router-{n}"))?;
        router_addrs.push((n, router_addr));
    }

    // Workloads. Cached row: one simulate request, warmed once. Shard
    // rows: SHARD_KEYS distinct requests (source variants), warmed
    // through each router so every shard holds its own slice.
    let cached_payload = encode_request(&Request::Simulate {
        spec: o.spec.clone(),
        max_cycles: o.max_cycles,
    });
    let shard_payloads: Vec<Vec<u8>> = (0..SHARD_KEYS)
        .map(|i| {
            encode_request(&Request::Simulate {
                spec: JobSpec {
                    source: format!(
                        "fn main() {{ var s: int = {i}; \
                         for i in 0..40 {{ s = s + i * i; }} out(s); }}"
                    ),
                    scheme: o.spec.scheme,
                    issue: o.spec.issue,
                    delay: o.spec.delay,
                },
                max_cycles: o.max_cycles,
            })
        })
        .collect();

    eprintln!("bench: warming caches...");
    for addr in [&threads_addr, &event_addr] {
        let mut c = Client::connect(addr).map_err(|e| format!("warm {addr}: {e}"))?;
        let reply = c.request_raw(&cached_payload).map_err(|e| e.to_string())?;
        if reply.get(1) != Some(&3) {
            return Err(format!("warm-up rejected on {addr} (tag {:?})", reply.get(1)));
        }
    }
    for (_, addr) in &router_addrs {
        let mut c = Client::connect(addr).map_err(|e| format!("warm {addr}: {e}"))?;
        for p in &shard_payloads {
            let reply = c.request_raw(p).map_err(|e| e.to_string())?;
            if reply.get(1) != Some(&3) {
                return Err(format!("warm-up rejected on {addr} (tag {:?})", reply.get(1)));
            }
        }
    }

    // Interleaved sample rounds: every configuration is measured once
    // per round, so drift (thermal, page cache) spreads evenly instead
    // of biasing whichever config ran last.
    let samples = o.samples.max(5);
    let cold_per_conn = (o.requests / 25).max(8);
    let cached = std::slice::from_ref(&cached_payload);
    let mut threads_cached = Row { samples: vec![] };
    let mut event_cached = Row { samples: vec![] };
    let mut event_cold = Row { samples: vec![] };
    let mut shard_rows: Vec<(usize, Row)> =
        router_addrs.iter().map(|(n, _)| (*n, Row { samples: vec![] })).collect();
    for sample in 0..samples {
        eprintln!("bench: sample {}/{samples}", sample + 1);
        threads_cached
            .samples
            .push(run_load(&threads_addr, o.conns, cached, o.requests)?);
        event_cached
            .samples
            .push(run_load(&event_addr, o.conns, cached, o.requests)?);
        for ((_, addr), (_, row)) in router_addrs.iter().zip(shard_rows.iter_mut()) {
            row.samples
                .push(run_load(addr, o.conns, &shard_payloads, o.requests)?);
        }
        event_cold.samples.push(run_load_cold(
            &event_addr,
            o.conns,
            cold_per_conn,
            sample,
            o.max_cycles,
        )?);
    }

    eprintln!("bench: shutting down fleet...");
    let mut signal = vec![threads_addr.clone(), event_addr.clone()];
    signal.extend(router_addrs.iter().map(|(_, a)| a.clone()));
    fleet.shutdown(&signal)?;

    let staged = bench_staged_compile(o)?;

    let (threads_med, _) = threads_cached.stats();
    let (event_med, _) = event_cached.stats();
    let shard_meds: Vec<(usize, f64)> =
        shard_rows.iter().map(|(n, r)| (*n, r.stats().0)).collect();
    let shard1 = shard_meds
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, m)| *m)
        .unwrap_or(f64::NAN);

    println!("rows (median req/s over {samples} samples, {} conns):", o.conns);
    println!("  threads_cached: {threads_med:.0}");
    println!(
        "  event_cached:   {event_med:.0}  ({:.2}x threads)",
        event_med / threads_med
    );
    for (n, med) in &shard_meds {
        println!("  shard{n}_cached:  {med:.0}  ({:.2}x shard1)", med / shard1);
    }
    println!("  event_cold:     {:.0}", event_cold.stats().0);
    println!(
        "staged_compile cold: {:.0}/s  warm: {:.0}/s  ({:.1}x)",
        staged.cold_per_sec,
        staged.warm_per_sec,
        staged.warm_per_sec / staged.cold_per_sec
    );

    let mut rows = vec![
        ("threads_cached".to_string(), threads_cached.json()),
        ("event_cached".to_string(), event_cached.json()),
    ];
    for (n, row) in &shard_rows {
        rows.push((format!("shard{n}_cached"), row.json()));
    }
    rows.push(("event_cold".to_string(), event_cold.json()));
    let rows_json: Vec<String> = rows
        .iter()
        .map(|(name, body)| format!("    \"{name}\": {body}"))
        .collect();
    let ratios_json: Vec<String> = std::iter::once(format!(
        "    \"event_over_threads\": {:.2}",
        event_med / threads_med
    ))
    .chain(
        shard_meds
            .iter()
            .filter(|(n, _)| *n != 1)
            .map(|(n, med)| format!("    \"shard{n}_over_shard1\": {:.2}", med / shard1)),
    )
    .collect();

    // Ratios are architecture-sensitive: on a single-core host every
    // process shares the one CPU, so event-vs-threads and the shard
    // curve are bounded by total per-request CPU, not by connection
    // handling. Record the core count so readers can interpret them.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"workload\": \"simulate {} issue {} delay {}\",\n  \"host_cpus\": {host_cpus},\n  \"conns\": {},\n  \"samples\": {},\n  \"requests_per_conn\": {},\n  \"cold_requests_per_conn\": {},\n  \"shard_keys\": {},\n  \"rows\": {{\n{}\n  }},\n  \"ratios\": {{\n{}\n  }},\n  \"staged_compile\": {{\n    \"iterations\": {},\n    \"cold_elapsed_s\": {:.4},\n    \"warm_elapsed_s\": {:.4},\n    \"cold_compiles_per_sec\": {:.0},\n    \"warm_compiles_per_sec\": {:.0},\n    \"warm_over_cold\": {:.2}\n  }}\n}}\n",
        o.spec.scheme.name().to_ascii_lowercase(),
        o.spec.issue,
        o.spec.delay,
        o.conns,
        samples,
        o.requests,
        cold_per_conn,
        SHARD_KEYS,
        rows_json.join(",\n"),
        ratios_json.join(",\n"),
        staged.iterations,
        staged.cold_elapsed,
        staged.warm_elapsed,
        staged.cold_per_sec,
        staged.warm_per_sec,
        staged.warm_per_sec / staged.cold_per_sec,
    );
    std::fs::File::create(&o.out)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .map_err(|e| format!("cannot write {}: {e}", o.out))?;
    println!("wrote {}", o.out);
    Ok(())
}

fn main() -> ExitCode {
    let o = parse_args();
    let needs_source = matches!(o.cmd.as_str(), "compile" | "simulate" | "inject" | "bench");
    if needs_source && !o.have_source {
        eprintln!("casted-client: {} needs --file or --source", o.cmd);
        usage();
    }

    if o.cmd == "bench" {
        return match run_bench(&o) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("casted-client: bench failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if o.cmd == "inject" && o.stream {
        return inject_stream(&o);
    }

    let req = match o.cmd.as_str() {
        "ping" => Request::Ping,
        "compile" => Request::Compile {
            spec: o.spec.clone(),
        },
        "simulate" => Request::Simulate {
            spec: o.spec.clone(),
            max_cycles: o.max_cycles,
        },
        "inject" => Request::Inject {
            spec: o.spec.clone(),
            trials: o.trials,
            seed: o.seed,
            engine: o.engine,
        },
        "counters" => Request::Counters,
        "shutdown" => Request::Shutdown,
        other => {
            eprintln!("casted-client: unknown command {other:?}");
            usage();
        }
    };

    let mut client = match Client::connect(&o.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("casted-client: connect to {} failed: {e}", o.addr);
            return ExitCode::FAILURE;
        }
    };
    match client.request(&req) {
        Ok(resp) => print_response(&resp),
        Err(e) => {
            eprintln!("casted-client: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}
