//! `casted-serve` — run the compile-and-simulate service.
//!
//! ```text
//! casted-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--conn-model event|threads]
//!              [--cache-bytes N] [--max-cycles N] [--max-trials N]
//!              [--quota-burst N] [--quota-refill N] [--queue-deadline-ms N]
//!              [--section-cache DIR] [--artifact-cache DIR]
//!              [--metrics] [--metrics-counters]
//! ```
//!
//! `--conn-model` picks the connection layer: `event` (default) is the
//! epoll-driven single-loop model; `threads` is the portable
//! thread-per-connection fallback (also chosen automatically where the
//! poll backend is unavailable).
//!
//! `--quota-burst` / `--quota-refill` enable per-client token-bucket
//! admission (burst capacity / refill per second); `--queue-deadline-ms`
//! drops jobs that waited longer than the deadline in the queue
//! (reply: `Expired`). All three are off by default — see
//! docs/SERVING.md.
//!
//! With `--section-cache DIR`, inject requests that miss the reply
//! cache run through the compositional section store in `DIR`
//! (partial hits: only changed program sections re-inject; replies
//! stay byte-identical — see docs/INCREMENTAL.md).
//!
//! With `--artifact-cache DIR`, the compile half of every miss runs
//! through the memoized stage pipeline in `DIR`: a request for a
//! known program under a new (issue, delay) pair reuses the cached
//! token/sema/IR/ED artifacts and re-runs only the schedule and
//! regalloc stages (see docs/PIPELINE.md).
//!
//! Binds loopback (`127.0.0.1:0` → ephemeral port) by default, prints
//! `casted-serve listening on ADDR`, and serves until a client sends
//! `Shutdown` — then drains the job queue, finishes in-flight replies
//! and exits 0. With `--metrics-counters` the deterministic counter
//! snapshot is printed to stdout after the drain; with `--metrics` the
//! full export (gauges + histograms) is printed instead.

use std::process::ExitCode;

use casted_serve::cache::CacheConfig;
use casted_serve::server::{ConnModel, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: casted-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--conn-model event|threads] [--cache-bytes N] [--max-cycles N] [--max-trials N] \
         [--quota-burst N] [--quota-refill N] [--queue-deadline-ms N] \
         [--section-cache DIR] [--artifact-cache DIR] [--metrics] [--metrics-counters]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let Some(v) = v else {
        eprintln!("casted-serve: {flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("casted-serve: bad value {v:?} for {flag}");
        usage();
    })
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut metrics = false;
    let mut metrics_counters = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse("--addr", args.next()),
            "--workers" => cfg.workers = parse("--workers", args.next()),
            "--queue" => cfg.queue_depth = parse("--queue", args.next()),
            "--conn-model" => {
                let v: String = parse("--conn-model", args.next());
                cfg.conn_model = ConnModel::parse(&v).unwrap_or_else(|| {
                    eprintln!("casted-serve: bad value {v:?} for --conn-model");
                    usage();
                })
            }
            "--quota-burst" => cfg.admission.quota_burst = parse("--quota-burst", args.next()),
            "--quota-refill" => {
                cfg.admission.quota_refill_per_sec = parse("--quota-refill", args.next())
            }
            "--queue-deadline-ms" => {
                cfg.admission.queue_deadline_ms = parse("--queue-deadline-ms", args.next())
            }
            "--cache-bytes" => {
                cfg.cache = CacheConfig {
                    byte_budget: parse("--cache-bytes", args.next()),
                    ..cfg.cache
                }
            }
            "--max-cycles" => cfg.max_cycles = parse("--max-cycles", args.next()),
            "--max-trials" => cfg.max_trials = parse("--max-trials", args.next()),
            "--section-cache" => {
                cfg.section_cache =
                    Some(std::path::PathBuf::from(parse::<String>("--section-cache", args.next())))
            }
            "--artifact-cache" => {
                cfg.artifact_cache =
                    Some(std::path::PathBuf::from(parse::<String>("--artifact-cache", args.next())))
            }
            "--metrics" => metrics = true,
            "--metrics-counters" => metrics_counters = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("casted-serve: unknown flag {other}");
                usage();
            }
        }
    }

    if metrics || metrics_counters {
        casted_obs::set_enabled(true);
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("casted-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke tests and the bench harness scrape this line for the
    // ephemeral port; keep its shape stable.
    println!("casted-serve listening on {}", server.addr());

    server.wait();

    if metrics_counters {
        print!("{}", casted_obs::snapshot_json());
    } else if metrics {
        print!("{}", casted_obs::export_json());
    }
    ExitCode::SUCCESS
}
