//! The long-lived compile-and-simulate server.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!             accept (supervisor, non-blocking poll)
//!                │ one thread per connection
//!                ▼
//!   conn thread: read frame → decode → cache lookup ──hit──► reply
//!                │ miss                                      (never
//!                ▼                                           queues)
//!        bounded job queue ──full──► Busy reply (backpressure:
//!                │                   the request is dropped, nothing
//!                ▼                   is buffered)
//!        worker pool (casted_util::pool::run_pool, N worker loops)
//!                │ service_api::{compile,simulate,inject} under a
//!                │ cycle-limit deadline, panic-isolated
//!                ▼
//!        encode reply → insert into cache → send to conn thread
//! ```
//!
//! **Backpressure.** The queue holds at most
//! [`ServerConfig::queue_depth`] jobs. A miss that finds it full gets
//! an immediate [`Response::Busy`]; the server never buffers
//! unboundedly, so overload costs the client a retry, not the server
//! its memory.
//!
//! **Deadlines.** Work requests run under the simulator/interpreter
//! cycle limit ([`ServerConfig::max_cycles`]): a hostile or buggy
//! program costs a bounded number of simulated cycles, after which the
//! client receives a structured `Err` reply.
//!
//! **Shutdown.** A [`Request::Shutdown`] (or
//! [`ServerHandle::shutdown`]) stops the acceptor and *closes* the
//! queue: workers drain every already-accepted job, every in-flight
//! reply is written, then idle connections are dropped and the server
//! exits. New work during the drain gets [`Response::ShuttingDown`].

use std::collections::HashMap;
use std::io::{self, ErrorKind, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use casted::service_api;
use casted_util::codec::{read_frame, write_frame};
use casted_util::pool::{pool_threads, run_pool};

use crate::cache::{Cache, CacheConfig};
use crate::protocol::{
    cache_key, decode_request, encode_response, Request, Response, MAX_FRAME,
};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` (the default) picks an ephemeral
    /// loopback port.
    pub addr: String,
    /// Worker threads draining the job queue (capped at the host's
    /// available parallelism).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue means `Busy` replies.
    pub queue_depth: usize,
    /// Reply-cache sizing.
    pub cache: CacheConfig,
    /// Per-request deadline as a simulated-cycle budget (the cap for
    /// client-requested `max_cycles`).
    pub max_cycles: u64,
    /// Maximum Monte-Carlo trials a single inject request may ask for.
    pub max_trials: u64,
    /// On-disk section store for inject requests. When set, inject
    /// misses run through the compositional campaign
    /// (`casted_faults::run_campaign_incremental`) keyed into this
    /// directory, so requests for similar programs become *partial*
    /// cache hits (only changed sections re-inject) while replies stay
    /// byte-identical to the engines' — the exact-reply cache contract
    /// is unchanged. `None` (the default) keeps cold per-request
    /// campaigns.
    pub section_cache: Option<std::path::PathBuf>,
    /// On-disk artifact store for the staged compile pipeline. When
    /// set, every compile/simulate/inject miss runs its compile half
    /// through the memoized stage graph (`docs/PIPELINE.md`): a request
    /// for a program whose IR was already built under a *different*
    /// (issue, delay) pair skips lex/parse/sema/codegen entirely and
    /// restarts at the ED-transform. Replies are byte-identical to the
    /// monolithic path (the stage-exactness guarantee), so the reply
    /// cache contract is unchanged. `None` (the default) compiles
    /// monolithically.
    pub artifact_cache: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: pool_threads(),
            queue_depth: 64,
            cache: CacheConfig::default(),
            max_cycles: 200_000_000,
            max_trials: 20_000,
            section_cache: None,
            artifact_cache: None,
        }
    }
}

/// One queued unit of work.
struct Job {
    req: Request,
    key: u64,
    reply: mpsc::SyncSender<Vec<u8>>,
}

/// Why [`JobQueue::try_push`] refused a job.
enum PushError {
    /// At capacity — the backpressure signal.
    Full,
    /// Draining for shutdown.
    Closed,
}

struct QueueInner {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

/// Bounded MPMC job queue: `try_push` never blocks (that is the whole
/// point — overload is reported, not buffered), `pop` blocks until a
/// job arrives or the queue is closed *and* drained.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn try_push(&self, job: Job) -> Result<usize, PushError> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.jobs.len() >= self.cap {
            return Err(PushError::Full);
        }
        g.jobs.push_back(job);
        let depth = g.jobs.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    fn pop(&self) -> Option<Job> {
        let mut g = self.lock();
        loop {
            if let Some(job) = g.jobs.pop_front() {
                casted_obs::gauge_set("serve.queue_depth", g.jobs.len() as u64);
                return Some(job);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

struct Shared {
    cfg: ServerConfig,
    queue: JobQueue,
    cache: Cache,
    pipeline: Option<casted::stages::ArtifactPipeline>,
    stop: AtomicBool,
    active_conns: AtomicUsize,
    in_flight: AtomicUsize,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicUsize,
}

impl Shared {
    fn initiate_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) drains and stops it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

/// Alias kept for readability at call sites.
pub type ServerHandle = Server;

impl Server {
    /// Bind and start serving. Returns once the listener is live; the
    /// actual serving happens on background threads.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let pipeline = match &cfg.artifact_cache {
            Some(dir) => Some(casted::stages::ArtifactPipeline::open(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_depth),
            cache: Cache::new(&cfg.cache),
            pipeline,
            cfg,
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicUsize::new(0),
        });
        let sh = shared.clone();
        let supervisor = std::thread::Builder::new()
            .name("serve-supervisor".into())
            .spawn(move || supervise(listener, sh))?;
        Ok(Server {
            addr,
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the server exits (a client sent `Shutdown`).
    pub fn wait(mut self) {
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }

    /// Drain and stop from the hosting process.
    pub fn shutdown(mut self) {
        self.shared.initiate_shutdown();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.initiate_shutdown();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Acceptor + shutdown sequencing.
fn supervise(listener: TcpListener, shared: Arc<Shared>) {
    let workers = shared.cfg.workers.clamp(1, pool_threads());
    let pool_shared = shared.clone();
    let pool_host = std::thread::Builder::new()
        .name("serve-pool".into())
        .spawn(move || {
            run_pool(
                (0..workers)
                    .map(|_| {
                        let sh = pool_shared.clone();
                        move || worker_loop(&sh)
                    })
                    .collect(),
            );
        })
        .expect("spawn worker pool host");

    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                casted_obs::inc("serve.connections");
                let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed) as u64;
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(id, clone);
                }
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let sh = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        handle_conn(&sh, stream);
                        sh.conns
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .remove(&id);
                        sh.active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(300));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }

    // Drain: the queue is closed (initiate_shutdown); workers finish
    // every accepted job, then exit.
    let _ = pool_host.join();

    // Every accepted job has produced a reply; wait for the connection
    // threads to finish writing them out.
    let deadline = Instant::now() + Duration::from_secs(5);
    while shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Unblock connections idling in a read: drop their sockets.
    for (_, s) in shared.conns.lock().unwrap_or_else(|e| e.into_inner()).drain() {
        let _ = s.shutdown(SockShutdown::Both);
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    while shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One worker: pop, execute, cache, reply — until the queue closes.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let bytes = execute_encoded(shared, &job.req);
        // Only successful replies are cached (tag check via decode is
        // wasteful; the executor tells us directly).
        if bytes.cacheable {
            shared.cache.insert(job.key, bytes.payload.clone());
        }
        // The connection thread may have died; a lost reply is fine.
        let _ = job.reply.send(bytes.payload);
    }
}

struct Encoded {
    payload: Vec<u8>,
    cacheable: bool,
}

/// Run one work request through `service_api`, panic-isolated, and
/// encode the reply.
fn execute_encoded(shared: &Arc<Shared>, req: &Request) -> Encoded {
    let hist: &'static str = match req {
        Request::Compile { .. } => "serve.compile_ns",
        Request::Simulate { .. } => "serve.simulate_ns",
        Request::Inject { .. } => "serve.inject_ns",
        _ => "serve.other_ns",
    };
    let span = casted_obs::span(hist);
    let resp = match catch_unwind(AssertUnwindSafe(|| execute(shared, req))) {
        Ok(resp) => resp,
        Err(_) => {
            casted_obs::inc("serve.panics");
            Response::Err("internal error: request execution panicked".into())
        }
    };
    drop(span);
    if matches!(resp, Response::Err(_)) {
        casted_obs::inc("serve.errors");
    }
    Encoded {
        cacheable: resp.cacheable(),
        payload: encode_response(&resp),
    }
}

fn execute(shared: &Arc<Shared>, req: &Request) -> Response {
    let cap = shared.cfg.max_cycles;
    let pipeline = shared.pipeline.as_ref();
    match req {
        Request::Compile { spec } => match service_api::compile_stats_with(spec, pipeline) {
            Ok(r) => Response::Compiled(r),
            Err(e) => Response::Err(e),
        },
        Request::Simulate { spec, max_cycles } => {
            match service_api::simulate_stats_with(spec, (*max_cycles).min(cap), pipeline) {
                Ok(r) => Response::Simulated(r),
                Err(e) => Response::Err(e),
            }
        }
        Request::Inject {
            spec,
            trials,
            seed,
            engine,
        } => {
            if *trials > shared.cfg.max_trials {
                return Response::Err(format!(
                    "{trials} trials exceeds the server's limit of {}",
                    shared.cfg.max_trials
                ));
            }
            // The incremental path is engine-agnostic (its recombined
            // reply is byte-identical to every engine's), so the
            // request's engine choice only matters on the cold path.
            let result = match &shared.cfg.section_cache {
                Some(dir) => service_api::inject_tally_incremental_with(
                    spec, *trials, *seed, dir, cap, pipeline,
                ),
                None => {
                    service_api::inject_tally_with(spec, *trials, *seed, *engine, cap, pipeline)
                }
            };
            match result {
                Ok(r) => Response::Injected(r),
                Err(e) => Response::Err(e),
            }
        }
        other => Response::Err(format!("{} is not a work request", other.kind())),
    }
}

fn send_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, &encode_response(resp))
}

fn kind_counter(req: &Request) -> &'static str {
    match req {
        Request::Ping => "serve.requests.ping",
        Request::Compile { .. } => "serve.requests.compile",
        Request::Simulate { .. } => "serve.requests.simulate",
        Request::Inject { .. } => "serve.requests.inject",
        Request::Counters => "serve.requests.counters",
        Request::Shutdown => "serve.requests.shutdown",
    }
}

/// Serve one connection: a sequence of request/response frames until
/// EOF, a protocol error, or shutdown.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream, MAX_FRAME) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Oversized length prefix: structured reply, close.
                casted_obs::inc("serve.errors");
                let _ = send_response(&mut stream, &Response::Err(format!("bad frame: {e}")));
                return;
            }
            Err(_) => return, // truncated mid-frame / connection reset
        };
        let _span = casted_obs::span("serve.request_ns");
        casted_obs::inc("serve.requests");
        let req = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Malformed request: structured reply, then close —
                // the stream offset is not trustworthy any more.
                casted_obs::inc("serve.errors");
                let _ = send_response(&mut stream, &Response::Err(format!("bad request: {e}")));
                return;
            }
        };
        casted_obs::inc(kind_counter(&req));
        match req {
            Request::Ping => {
                if send_response(&mut stream, &Response::Pong).is_err() {
                    return;
                }
            }
            Request::Counters => {
                let snap = casted_obs::snapshot_json();
                if send_response(&mut stream, &Response::Counters(snap)).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = send_response(&mut stream, &Response::ShuttingDown);
                shared.initiate_shutdown();
                return;
            }
            req => {
                // Work request: cache → queue → worker.
                let key = cache_key(&payload);
                if let Some(bytes) = shared.cache.get(key) {
                    if write_frame(&mut stream, &bytes).is_err() {
                        return;
                    }
                    continue;
                }
                let (tx, rx) = mpsc::sync_channel(1);
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                let pushed = shared.queue.try_push(Job {
                    req,
                    key,
                    reply: tx,
                });
                let outcome = match pushed {
                    Ok(depth) => {
                        casted_obs::gauge_set("serve.queue_depth", depth as u64);
                        match rx.recv() {
                            Ok(bytes) => write_frame(&mut stream, &bytes),
                            Err(_) => send_response(
                                &mut stream,
                                &Response::Err("worker unavailable".into()),
                            ),
                        }
                    }
                    Err(PushError::Full) => {
                        casted_obs::inc("serve.busy");
                        send_response(&mut stream, &Response::Busy)
                    }
                    Err(PushError::Closed) => send_response(&mut stream, &Response::ShuttingDown),
                };
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                if outcome.is_err() {
                    return;
                }
                let _ = stream.flush();
            }
        }
    }
}
