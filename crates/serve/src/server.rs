//! The long-lived compile-and-simulate server.
//!
//! Two connection models share one worker/cache/queue core, selected
//! by [`ServerConfig::conn_model`]:
//!
//! ```text
//!  EVENT (default on Linux)              THREADS (portable fallback,
//!                                         bench baseline)
//!  one event-loop thread                  one thread per connection
//!  (casted_util::poll / epoll):           (blocking reads/writes):
//!    nonblocking accept                     blocking accept, unblocked
//!    readiness-driven reads,                at shutdown by a loopback
//!    incremental frame assembly             self-connect
//!    buffered nonblocking writes          Condvar-latched drain — no
//!    worker completions via a               sleep loops anywhere
//!    poller wakeup — no sleeps
//!                      \            /
//!                       ▼          ▼
//!          cache lookup ──hit──► reply (never queues)
//!                │ miss
//!                ▼
//!          admission control (token-bucket quota → Throttled)
//!                │ admitted
//!                ▼
//!          bounded job queue ──full──► Busy reply
//!                │ (jobs stamped; stale jobs dropped as Expired)
//!                ▼
//!          worker pool (casted_util::pool, N worker loops)
//!                │ service_api::* under a cycle-limit deadline,
//!                │ panic-isolated; streaming campaigns emit
//!                │ Progress frames every K trials
//!                ▼
//!          encode reply → insert into cache → deliver to connection
//! ```
//!
//! **Backpressure.** The queue holds at most
//! [`ServerConfig::queue_depth`] jobs. A miss that finds it full gets
//! an immediate [`Response::Busy`]; the server never buffers
//! unboundedly, so overload costs the client a retry, not the server
//! its memory. [`AdmissionConfig`] adds two opt-in refinements:
//! per-client token buckets (`Throttled` with a computed
//! `retry_after_ms`) and queue deadlines (`Expired` — stale jobs are
//! dropped *before* execution).
//!
//! **Streaming.** [`Request::InjectStream`] runs the campaign in
//! chunks, emitting a [`Response::Progress`] frame every `every`
//! trials and a terminal frame byte-identical to the non-streaming
//! [`Response::Injected`]. A [`Request::Cancel`] on the same
//! connection stops the campaign at the next chunk boundary; the
//! terminal [`Response::Cancelled`] carries the partial tally (an
//! exact prefix of the full run). A streaming campaign occupies its
//! connection: other requests pipelined behind it are buffered and
//! served after the terminal frame.
//!
//! **Deadlines.** Work requests run under the simulator/interpreter
//! cycle limit ([`ServerConfig::max_cycles`]): a hostile or buggy
//! program costs a bounded number of simulated cycles, after which the
//! client receives a structured `Err` reply.
//!
//! **Shutdown.** A [`Request::Shutdown`] (or
//! [`ServerHandle::shutdown`]) stops the acceptor and *closes* the
//! queue: workers drain every already-accepted job, every in-flight
//! reply is written, then idle connections are dropped and the server
//! exits. New work during the drain gets [`Response::ShuttingDown`].
//! Neither model sleeps its way through the drain: the event loop
//! exits when its last pending job's reply is flushed, and the threads
//! model waits on a Condvar latch notified by every completion.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Write};
use std::net::{IpAddr, Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use casted::service_api;
use casted_util::codec::{read_frame, write_frame};
use casted_util::poll;
use casted_util::pool::{pool_threads, run_pool};

use crate::admission::{Admission, AdmissionConfig, TokenBuckets};
use crate::cache::{Cache, CacheConfig};
use crate::protocol::{
    cache_key, decode_request, encode_response, Request, Response, MAX_FRAME,
};

/// How connections are served.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConnModel {
    /// Event-driven: one loop thread owns every socket through
    /// `casted_util::poll` (epoll). Falls back to [`ConnModel::Threads`]
    /// at runtime on targets without the poll backend.
    #[default]
    Event,
    /// One blocking thread per connection — the portable fallback and
    /// the bench baseline the event model is measured against.
    Threads,
}

impl ConnModel {
    /// Parse a `--conn-model` flag value.
    pub fn parse(s: &str) -> Option<ConnModel> {
        match s.to_ascii_lowercase().as_str() {
            "event" => Some(ConnModel::Event),
            "threads" => Some(ConnModel::Threads),
            _ => None,
        }
    }
}

/// Progress-frame period (in trials) when a streaming request asks
/// for `every == 0` ("server default").
pub const DEFAULT_STREAM_EVERY: u64 = 100;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` (the default) picks an ephemeral
    /// loopback port.
    pub addr: String,
    /// Worker threads draining the job queue (capped at the host's
    /// available parallelism).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue means `Busy` replies.
    pub queue_depth: usize,
    /// Reply-cache sizing.
    pub cache: CacheConfig,
    /// Per-request deadline as a simulated-cycle budget (the cap for
    /// client-requested `max_cycles`).
    pub max_cycles: u64,
    /// Maximum Monte-Carlo trials a single inject request may ask for.
    pub max_trials: u64,
    /// On-disk section store for inject requests. When set, inject
    /// misses run through the compositional campaign
    /// (`casted_faults::run_campaign_incremental`) keyed into this
    /// directory, so requests for similar programs become *partial*
    /// cache hits (only changed sections re-inject) while replies stay
    /// byte-identical to the engines' — the exact-reply cache contract
    /// is unchanged. `None` (the default) keeps cold per-request
    /// campaigns. Streaming campaigns always run on the chunked engine
    /// path (their exactness contract makes the replies identical
    /// regardless).
    pub section_cache: Option<std::path::PathBuf>,
    /// On-disk artifact store for the staged compile pipeline. When
    /// set, every compile/simulate/inject miss runs its compile half
    /// through the memoized stage graph (`docs/PIPELINE.md`): a request
    /// for a program whose IR was already built under a *different*
    /// (issue, delay) pair skips lex/parse/sema/codegen entirely and
    /// restarts at the ED-transform. Replies are byte-identical to the
    /// monolithic path (the stage-exactness guarantee), so the reply
    /// cache contract is unchanged. `None` (the default) compiles
    /// monolithically.
    pub artifact_cache: Option<std::path::PathBuf>,
    /// Connection-handling model (see [`ConnModel`]).
    pub conn_model: ConnModel,
    /// Admission control (quotas + queue deadlines); defaults off.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: pool_threads(),
            queue_depth: 64,
            cache: CacheConfig::default(),
            max_cycles: 200_000_000,
            max_trials: 20_000,
            section_cache: None,
            artifact_cache: None,
            conn_model: ConnModel::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Where a finished job's frames go.
pub(crate) enum ReplySink {
    /// Threads model, one-shot request: terminal payload over a
    /// channel back to the connection thread.
    Channel(mpsc::SyncSender<Vec<u8>>),
    /// Threads model, streaming request: the worker writes every frame
    /// (progress + terminal) straight to this socket clone — the
    /// connection thread stays off the write side until `done` fires
    /// (`true` = campaign completed, `false` = cancelled).
    Socket {
        writer: TcpStream,
        done: mpsc::SyncSender<bool>,
    },
    /// Event model: frames are posted to the loop's completion queue
    /// (followed by a poller wakeup) addressed to this connection.
    Loop { conn: u64 },
}

/// One queued unit of work.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) key: u64,
    pub(crate) enqueued: Instant,
    /// Cancel flag for streaming jobs (checked at chunk boundaries).
    pub(crate) cancel: Option<Arc<AtomicBool>>,
    pub(crate) sink: ReplySink,
}

/// One frame produced by a worker for the event loop to deliver.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) payload: Vec<u8>,
    /// Last frame of its job? (Progress frames are not.)
    pub(crate) terminal: bool,
    /// Terminal frame of a *cancelled* stream (drives the late-cancel
    /// bookkeeping in the loop).
    pub(crate) cancelled: bool,
}

/// Why [`JobQueue::try_push`] refused a job.
pub(crate) enum PushError {
    /// At capacity — the backpressure signal.
    Full,
    /// Draining for shutdown.
    Closed,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded MPMC job queue: `try_push` never blocks (that is the whole
/// point — overload is reported, not buffered), `pop` blocks until a
/// job arrives or the queue is closed *and* drained.
pub(crate) struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn try_push(&self, job: Job) -> Result<usize, PushError> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.jobs.len() >= self.cap {
            return Err(PushError::Full);
        }
        g.jobs.push_back(job);
        let depth = g.jobs.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    fn pop(&self) -> Option<Job> {
        let mut g = self.lock();
        loop {
            if let Some(job) = g.jobs.pop_front() {
                casted_obs::gauge_set("serve.queue_depth", g.jobs.len() as u64);
                return Some(job);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// Drain latch: counters whose decrements notify a Condvar, so
/// shutdown waits exactly as long as the work takes (bounded by a
/// deadline) instead of sleep-polling.
struct Latch {
    gate: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn notify(&self) {
        let _g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// Block until `done()` or the deadline; wakes on every
    /// [`Latch::notify`].
    fn wait_until(&self, deadline: Instant, done: impl Fn() -> bool) {
        let mut g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        while !done() {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
        }
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) queue: JobQueue,
    pub(crate) cache: Cache,
    pub(crate) pipeline: Option<casted::stages::ArtifactPipeline>,
    pub(crate) buckets: TokenBuckets,
    pub(crate) stop: AtomicBool,
    /// Event-model reply path: worker → loop.
    pub(crate) completions: Mutex<Vec<Completion>>,
    pub(crate) notifier: Mutex<Option<poll::Notifier>>,
    // Threads-model bookkeeping.
    active_conns: AtomicUsize,
    in_flight: AtomicUsize,
    latch: Latch,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicUsize,
    /// Bound address, used by the threads model to unblock a blocking
    /// `accept` at shutdown with a loopback self-connect.
    self_addr: SocketAddr,
}

impl Shared {
    pub(crate) fn initiate_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Wake the event loop out of its kernel wait...
        if let Some(n) = &*self.notifier.lock().unwrap_or_else(|e| e.into_inner()) {
            n.notify();
        }
        // ...and unblock a threads-model accept with a self-connect
        // (harmless no-op for the event model's nonblocking listener).
        let _ = TcpStream::connect_timeout(&self.self_addr, Duration::from_millis(200));
        self.latch.notify();
    }

    /// Post one worker-produced frame to the event loop and wake it.
    pub(crate) fn post_completion(&self, c: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(c);
        if let Some(n) = &*self.notifier.lock().unwrap_or_else(|e| e.into_inner()) {
            n.notify();
        }
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) drains and stops it.
pub struct Server {
    addr: SocketAddr,
    model: ConnModel,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

/// Alias kept for readability at call sites.
pub type ServerHandle = Server;

impl Server {
    /// Bind and start serving. Returns once the listener is live; the
    /// actual serving happens on background threads.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pipeline = match &cfg.artifact_cache {
            Some(dir) => Some(casted::stages::ArtifactPipeline::open(dir)?),
            None => None,
        };
        // Resolve the connection model: Event needs the poll backend;
        // without it (non-Linux targets) fall back to Threads so one
        // binary serves everywhere.
        let poller = match cfg.conn_model {
            ConnModel::Event => poll::Poller::new().ok(),
            ConnModel::Threads => None,
        };
        let model = if poller.is_some() {
            ConnModel::Event
        } else {
            ConnModel::Threads
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_depth),
            cache: Cache::new(&cfg.cache),
            pipeline,
            buckets: TokenBuckets::new(&cfg.admission),
            cfg,
            stop: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
            notifier: Mutex::new(None),
            active_conns: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            latch: Latch::new(),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicUsize::new(0),
            self_addr: addr,
        });
        let sh = shared.clone();
        let supervisor = std::thread::Builder::new()
            .name("serve-supervisor".into())
            .spawn(move || supervise(listener, sh, poller))?;
        Ok(Server {
            addr,
            model,
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The connection model actually serving (the configured one, or
    /// the threads fallback when the poll backend is unavailable).
    pub fn model(&self) -> ConnModel {
        self.model
    }

    /// Block until the server exits (a client sent `Shutdown`).
    pub fn wait(mut self) {
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }

    /// Drain and stop from the hosting process.
    pub fn shutdown(mut self) {
        self.shared.initiate_shutdown();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.initiate_shutdown();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Host the worker pool, run the chosen connection front end, then
/// sequence the drain.
fn supervise(listener: TcpListener, shared: Arc<Shared>, poller: Option<poll::Poller>) {
    let workers = shared.cfg.workers.clamp(1, pool_threads());
    let pool_shared = shared.clone();
    let pool_host = std::thread::Builder::new()
        .name("serve-pool".into())
        .spawn(move || {
            run_pool(
                (0..workers)
                    .map(|_| {
                        let sh = pool_shared.clone();
                        move || worker_loop(&sh)
                    })
                    .collect(),
            );
        })
        .expect("spawn worker pool host");

    match poller {
        Some(poller) => crate::evloop::run(listener, &shared, poller),
        None => accept_loop_threads(listener, &shared),
    }

    // The queue is closed (initiate_shutdown); workers finish every
    // accepted job, then exit.
    let _ = pool_host.join();

    // Threads model: wait (Condvar latch, no sleep loops) for the
    // connection threads to finish writing in-flight replies, then
    // unblock the ones idling in a read and wait for them to exit.
    // The event loop already flushed and closed everything itself.
    shared.latch.wait_until(Instant::now() + Duration::from_secs(5), || {
        shared.in_flight.load(Ordering::SeqCst) == 0
    });
    for (_, s) in shared.conns.lock().unwrap_or_else(|e| e.into_inner()).drain() {
        let _ = s.shutdown(SockShutdown::Both);
    }
    shared.latch.wait_until(Instant::now() + Duration::from_secs(2), || {
        shared.active_conns.load(Ordering::SeqCst) == 0
    });
}

/// Threads-model front end: blocking accept, one thread per
/// connection. Shutdown unblocks the accept with a loopback
/// self-connect (see [`Shared::initiate_shutdown`]) — no nonblocking
/// poll, no sleep backoff.
fn accept_loop_threads(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The self-connect (or a straggler racing the drain).
            return;
        }
        casted_obs::inc("serve.connections");
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed) as u64;
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, clone);
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        let sh = shared.clone();
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                handle_conn(&sh, stream);
                sh.conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&id);
                sh.active_conns.fetch_sub(1, Ordering::SeqCst);
                sh.latch.notify();
            });
    }
}

/// One worker: pop, (maybe drop as expired), execute, cache, deliver —
/// until the queue closes.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let deadline_ms = shared.cfg.admission.queue_deadline_ms;
        if deadline_ms > 0 && job.enqueued.elapsed() > Duration::from_millis(deadline_ms) {
            // Stale before it ever ran: shed it, visibly.
            casted_obs::inc("serve.admission.expired");
            deliver(shared, &job, encode_response(&Response::Expired), true, false);
            continue;
        }
        match &job.req {
            Request::InjectStream {
                spec,
                trials,
                seed,
                every,
                ..
            } => {
                let cancel = job
                    .cancel
                    .clone()
                    .unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
                let (terminal, cancelled) = execute_stream(
                    shared,
                    spec,
                    *trials,
                    *seed,
                    *every,
                    &cancel,
                    &mut |frame| deliver(shared, &job, frame, false, false),
                );
                // Streaming replies are never cached: the terminal
                // frame's would-be key is the InjectStream encoding,
                // and progress frames are connection-specific.
                deliver(shared, &job, terminal, true, cancelled);
            }
            req => {
                let bytes = execute_encoded(shared, req);
                if bytes.cacheable {
                    shared.cache.insert(job.key, bytes.payload.clone());
                }
                deliver(shared, &job, bytes.payload, true, false);
            }
        }
    }
}

/// Route one frame to wherever the job's connection lives.
fn deliver(shared: &Arc<Shared>, job: &Job, payload: Vec<u8>, terminal: bool, cancelled: bool) {
    match &job.sink {
        ReplySink::Channel(tx) => {
            // The connection thread may have died; a lost reply is fine.
            let _ = tx.send(payload);
        }
        ReplySink::Socket { writer, done } => {
            let _ = write_frame(&mut (&*writer), &payload);
            if terminal {
                let _ = done.send(!cancelled);
            }
        }
        ReplySink::Loop { conn } => {
            shared.post_completion(Completion {
                conn: *conn,
                payload,
                terminal,
                cancelled,
            });
        }
    }
}

pub(crate) struct Encoded {
    pub(crate) payload: Vec<u8>,
    pub(crate) cacheable: bool,
}

/// Run one work request through `service_api`, panic-isolated, and
/// encode the reply.
pub(crate) fn execute_encoded(shared: &Arc<Shared>, req: &Request) -> Encoded {
    let hist: &'static str = match req {
        Request::Compile { .. } => "serve.compile_ns",
        Request::Simulate { .. } => "serve.simulate_ns",
        Request::Inject { .. } => "serve.inject_ns",
        _ => "serve.other_ns",
    };
    let span = casted_obs::span(hist);
    let resp = match catch_unwind(AssertUnwindSafe(|| execute(shared, req))) {
        Ok(resp) => resp,
        Err(_) => {
            casted_obs::inc("serve.panics");
            Response::Err("internal error: request execution panicked".into())
        }
    };
    drop(span);
    if matches!(resp, Response::Err(_)) {
        casted_obs::inc("serve.errors");
    }
    Encoded {
        cacheable: resp.cacheable(),
        payload: encode_response(&resp),
    }
}

/// Run a streaming campaign, emitting encoded Progress frames through
/// `emit`; returns the encoded terminal frame and whether it is a
/// `Cancelled` one. Panic-isolated like [`execute_encoded`].
fn execute_stream(
    shared: &Arc<Shared>,
    spec: &service_api::JobSpec,
    trials: u64,
    seed: u64,
    every: u64,
    cancel: &Arc<AtomicBool>,
    emit: &mut dyn FnMut(Vec<u8>),
) -> (Vec<u8>, bool) {
    let span = casted_obs::span("serve.inject_ns");
    let resp = match catch_unwind(AssertUnwindSafe(|| {
        run_stream(shared, spec, trials, seed, every, cancel, emit)
    })) {
        Ok(resp) => resp,
        Err(_) => {
            casted_obs::inc("serve.panics");
            Response::Err("internal error: request execution panicked".into())
        }
    };
    drop(span);
    if matches!(resp, Response::Err(_)) {
        casted_obs::inc("serve.errors");
    }
    let cancelled = matches!(resp, Response::Cancelled { .. });
    (encode_response(&resp), cancelled)
}

fn run_stream(
    shared: &Arc<Shared>,
    spec: &service_api::JobSpec,
    trials: u64,
    seed: u64,
    every: u64,
    cancel: &Arc<AtomicBool>,
    emit: &mut dyn FnMut(Vec<u8>),
) -> Response {
    if trials > shared.cfg.max_trials {
        return Response::Err(format!(
            "{trials} trials exceeds the server's limit of {}",
            shared.cfg.max_trials
        ));
    }
    let every = if every == 0 { DEFAULT_STREAM_EVERY } else { every };
    casted_obs::inc("serve.stream.started");
    let result = service_api::inject_stream_with(
        spec,
        trials,
        seed,
        shared.cfg.max_cycles,
        every,
        shared.pipeline.as_ref(),
        &mut |done, counts| {
            if cancel.load(Ordering::SeqCst) {
                return false;
            }
            casted_obs::inc("serve.stream.progress");
            emit(encode_response(&Response::Progress {
                done,
                counts: *counts,
            }));
            !cancel.load(Ordering::SeqCst)
        },
    );
    match result {
        Ok((reply, true)) => {
            casted_obs::inc("serve.stream.completed");
            Response::Injected(reply)
        }
        Ok((reply, false)) => {
            casted_obs::inc("serve.stream.cancelled");
            Response::Cancelled {
                done: reply.trials,
                counts: reply.counts,
            }
        }
        Err(e) => Response::Err(e),
    }
}

fn execute(shared: &Arc<Shared>, req: &Request) -> Response {
    let cap = shared.cfg.max_cycles;
    let pipeline = shared.pipeline.as_ref();
    match req {
        Request::Compile { spec } => match service_api::compile_stats_with(spec, pipeline) {
            Ok(r) => Response::Compiled(r),
            Err(e) => Response::Err(e),
        },
        Request::Simulate { spec, max_cycles } => {
            match service_api::simulate_stats_with(spec, (*max_cycles).min(cap), pipeline) {
                Ok(r) => Response::Simulated(r),
                Err(e) => Response::Err(e),
            }
        }
        Request::Inject {
            spec,
            trials,
            seed,
            engine,
        } => {
            if *trials > shared.cfg.max_trials {
                return Response::Err(format!(
                    "{trials} trials exceeds the server's limit of {}",
                    shared.cfg.max_trials
                ));
            }
            // The incremental path is engine-agnostic (its recombined
            // reply is byte-identical to every engine's), so the
            // request's engine choice only matters on the cold path.
            let result = match &shared.cfg.section_cache {
                Some(dir) => service_api::inject_tally_incremental_with(
                    spec, *trials, *seed, dir, cap, pipeline,
                ),
                None => {
                    service_api::inject_tally_with(spec, *trials, *seed, *engine, cap, pipeline)
                }
            };
            match result {
                Ok(r) => Response::Injected(r),
                Err(e) => Response::Err(e),
            }
        }
        other => Response::Err(format!("{} is not a work request", other.kind())),
    }
}

fn send_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, &encode_response(resp))
}

pub(crate) fn kind_counter(req: &Request) -> &'static str {
    match req {
        Request::Ping => "serve.requests.ping",
        Request::Compile { .. } => "serve.requests.compile",
        Request::Simulate { .. } => "serve.requests.simulate",
        Request::Inject { .. } => "serve.requests.inject",
        Request::Counters => "serve.requests.counters",
        Request::Shutdown => "serve.requests.shutdown",
        Request::InjectStream { .. } => "serve.requests.inject_stream",
        Request::Cancel => "serve.requests.cancel",
    }
}

/// Admission check for one cache-missing work request. `None` =
/// admitted; `Some(resp)` = the structured rejection to send.
pub(crate) fn admit(shared: &Shared, peer: IpAddr) -> Option<Response> {
    if !shared.cfg.admission.enabled() {
        return None;
    }
    match shared.buckets.check(peer) {
        Admission::Admit => {
            casted_obs::inc("serve.admission.admitted");
            None
        }
        Admission::Throttle { retry_after_ms } => {
            casted_obs::inc("serve.admission.throttled");
            Some(Response::Throttled { retry_after_ms })
        }
    }
}

// ----------------- threads-model connection handling -----------------

enum Flow {
    Continue,
    Close,
}

/// Serve one connection: a sequence of request/response frames until
/// EOF, a protocol error, or shutdown.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
    // Frames read ahead while a streaming campaign occupied the
    // connection; served in order once it finishes.
    let mut pending: VecDeque<Vec<u8>> = VecDeque::new();
    loop {
        let payload = match pending.pop_front() {
            Some(p) => p,
            None => match read_frame(&mut stream, MAX_FRAME) {
                Ok(Some(p)) => p,
                Ok(None) => return, // clean EOF
                Err(e) if e.kind() == ErrorKind::InvalidData => {
                    // Oversized length prefix: structured reply, close.
                    casted_obs::inc("serve.errors");
                    let _ =
                        send_response(&mut stream, &Response::Err(format!("bad frame: {e}")));
                    return;
                }
                Err(_) => return, // truncated mid-frame / connection reset
            },
        };
        match dispatch(shared, &mut stream, peer, payload, &mut pending) {
            Flow::Continue => {}
            Flow::Close => return,
        }
    }
}

/// Handle one complete request frame on a threads-model connection.
fn dispatch(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    peer: IpAddr,
    payload: Vec<u8>,
    pending: &mut VecDeque<Vec<u8>>,
) -> Flow {
    let _span = casted_obs::span("serve.request_ns");
    casted_obs::inc("serve.requests");
    let req = match decode_request(&payload) {
        Ok(r) => r,
        Err(e) => {
            // Malformed request: structured reply, then close — the
            // stream offset is not trustworthy any more.
            casted_obs::inc("serve.errors");
            let _ = send_response(stream, &Response::Err(format!("bad request: {e}")));
            return Flow::Close;
        }
    };
    casted_obs::inc(kind_counter(&req));
    match req {
        Request::Ping => {
            if send_response(stream, &Response::Pong).is_err() {
                return Flow::Close;
            }
        }
        Request::Counters => {
            let snap = casted_obs::snapshot_json();
            if send_response(stream, &Response::Counters(snap)).is_err() {
                return Flow::Close;
            }
        }
        Request::Shutdown => {
            let _ = send_response(stream, &Response::ShuttingDown);
            shared.initiate_shutdown();
            return Flow::Close;
        }
        Request::Cancel => {
            // No stream in flight on this connection (an in-flight one
            // is handled inside `stream_intercept`).
            if send_response(
                stream,
                &Response::Err("no streaming campaign in flight".into()),
            )
            .is_err()
            {
                return Flow::Close;
            }
        }
        req @ Request::InjectStream { .. } => {
            if let Some(resp) = admit(shared, peer) {
                return match send_response(stream, &resp) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                };
            }
            let writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => {
                    let _ = send_response(
                        stream,
                        &Response::Err("cannot clone connection for streaming".into()),
                    );
                    return Flow::Close;
                }
            };
            let cancel = Arc::new(AtomicBool::new(false));
            let (tx, rx) = mpsc::sync_channel(1);
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let pushed = shared.queue.try_push(Job {
                req,
                key: cache_key(&payload),
                enqueued: Instant::now(),
                cancel: Some(cancel.clone()),
                sink: ReplySink::Socket { writer, done: tx },
            });
            let flow = match pushed {
                Ok(depth) => {
                    casted_obs::gauge_set("serve.queue_depth", depth as u64);
                    stream_intercept(stream, rx, &cancel, pending)
                }
                Err(PushError::Full) => {
                    casted_obs::inc("serve.busy");
                    match send_response(stream, &Response::Busy) {
                        Ok(()) => Flow::Continue,
                        Err(_) => Flow::Close,
                    }
                }
                Err(PushError::Closed) => match send_response(stream, &Response::ShuttingDown) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                },
            };
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.latch.notify();
            if matches!(flow, Flow::Close) {
                return Flow::Close;
            }
        }
        req => {
            // One-shot work request: cache → admission → queue → worker.
            let key = cache_key(&payload);
            if let Some(bytes) = shared.cache.get(key) {
                if write_frame(stream, &bytes).is_err() {
                    return Flow::Close;
                }
                return Flow::Continue;
            }
            if let Some(resp) = admit(shared, peer) {
                return match send_response(stream, &resp) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                };
            }
            let (tx, rx) = mpsc::sync_channel(1);
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let pushed = shared.queue.try_push(Job {
                req,
                key,
                enqueued: Instant::now(),
                cancel: None,
                sink: ReplySink::Channel(tx),
            });
            let outcome = match pushed {
                Ok(depth) => {
                    casted_obs::gauge_set("serve.queue_depth", depth as u64);
                    match rx.recv() {
                        Ok(bytes) => write_frame(stream, &bytes),
                        Err(_) => {
                            send_response(stream, &Response::Err("worker unavailable".into()))
                        }
                    }
                }
                Err(PushError::Full) => {
                    casted_obs::inc("serve.busy");
                    send_response(stream, &Response::Busy)
                }
                Err(PushError::Closed) => send_response(stream, &Response::ShuttingDown),
            };
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.latch.notify();
            if outcome.is_err() {
                return Flow::Close;
            }
            let _ = stream.flush();
        }
    }
    Flow::Continue
}

/// While a streaming job owns the connection's write side, the
/// connection thread keeps reading: a [`Request::Cancel`] flips the
/// campaign's cancel flag, anything else is read ahead into `pending`
/// for after the stream. Returns when the worker signals completion.
fn stream_intercept(
    stream: &mut TcpStream,
    rx: mpsc::Receiver<bool>,
    cancel: &Arc<AtomicBool>,
    pending: &mut VecDeque<Vec<u8>>,
) -> Flow {
    let mut pending_cancel = false;
    let mut failed = false;
    let completed = loop {
        // Reads block indefinitely while the client is quiet (stream
        // completion is observed on the next frame). Only when frames
        // were read ahead do we time-bound the read, so their replies
        // are not stalled behind a silent client.
        let _ = stream.set_read_timeout(if pending.is_empty() {
            None
        } else {
            Some(Duration::from_millis(25))
        });
        match read_frame(stream, MAX_FRAME) {
            Ok(Some(frame)) => match rx.try_recv() {
                Ok(completed) => {
                    pending.push_back(frame);
                    break completed;
                }
                Err(_) => {
                    if matches!(decode_request(&frame), Ok(Request::Cancel)) {
                        casted_obs::inc("serve.requests.cancel");
                        cancel.store(true, Ordering::SeqCst);
                        pending_cancel = true;
                    } else {
                        pending.push_back(frame);
                    }
                }
            },
            Ok(None) => {
                // Client hung up: cancel the campaign, wait it out.
                cancel.store(true, Ordering::SeqCst);
                failed = true;
                break rx.recv().unwrap_or(false);
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                if let Ok(completed) = rx.try_recv() {
                    break completed;
                }
            }
            Err(_) => {
                cancel.store(true, Ordering::SeqCst);
                failed = true;
                break rx.recv().unwrap_or(false);
            }
        }
    };
    let _ = stream.set_read_timeout(None);
    if failed {
        return Flow::Close;
    }
    if pending_cancel && completed {
        // The cancel lost the race with the final chunk: the client
        // saw a terminal `Injected`, so its Cancel still needs a
        // reply to keep the request/reply ledger balanced.
        if send_response(
            stream,
            &Response::Err("cancel arrived after campaign completion".into()),
        )
        .is_err()
        {
            return Flow::Close;
        }
    }
    Flow::Continue
}
