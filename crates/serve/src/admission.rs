//! Admission control beyond binary `Busy`: per-client token-bucket
//! quotas and deadline-aware queue drop.
//!
//! The bounded job queue (PR 5) protects the server's *memory* — a
//! full queue is an immediate [`crate::protocol::Response::Busy`]. It
//! does nothing about *fairness* (one greedy client can keep the queue
//! full forever) or *staleness* (a job that waited seconds past its
//! usefulness still burns a worker). Two orthogonal mechanisms close
//! those gaps:
//!
//! * **Token buckets, per client address.** Every cache-missing work
//!   request spends one token from its peer's bucket; buckets hold at
//!   most [`AdmissionConfig::quota_burst`] tokens and refill at
//!   [`AdmissionConfig::quota_refill_per_sec`]. An empty bucket gets a
//!   structured [`crate::protocol::Response::Throttled`] with a
//!   computed `retry_after_ms` — the client knows *when* to come back,
//!   unlike `Busy`'s "whenever". Cache hits are never charged: they
//!   cost microseconds and throttling them would only push clients
//!   into re-asking colder questions.
//!
//! * **Queue deadlines.** Jobs are stamped on enqueue; a worker that
//!   pops a job older than [`AdmissionConfig::queue_deadline_ms`]
//!   replies [`crate::protocol::Response::Expired`] *without
//!   executing* — under overload the server sheds the work that
//!   already missed its window instead of burning workers on it.
//!
//! Both mechanisms are observable: `serve.admission.admitted`,
//! `serve.admission.throttled`, `serve.admission.expired` counters
//! (see `docs/OBSERVABILITY.md`). Both default **off** — admission is
//! an operator opt-in, and every test that does not opt in sees the
//! PR 5 behavior unchanged.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;

use casted_util::Mutex;

/// Admission-control knobs. All default to 0 = disabled.
#[derive(Clone, Debug, Default)]
pub struct AdmissionConfig {
    /// Token-bucket capacity per client address (0 disables quotas).
    pub quota_burst: u64,
    /// Tokens refilled per second (0 = buckets never refill — useful
    /// for deterministic tests and hard per-connection caps).
    pub quota_refill_per_sec: u64,
    /// Maximum milliseconds a job may wait in the queue before a
    /// worker drops it unexecuted (0 disables deadlines).
    pub queue_deadline_ms: u64,
}

impl AdmissionConfig {
    /// Is any admission mechanism active?
    pub fn enabled(&self) -> bool {
        self.quota_burst > 0 || self.queue_deadline_ms > 0
    }
}

/// `retry_after_ms` ceiling: with a zero refill rate the honest answer
/// is "never", which is not encodable — an hour says "much later"
/// while keeping the varint small.
const MAX_RETRY_MS: u64 = 3_600_000;

/// Entries kept before the bucket map is reset wholesale. Peers are
/// loopback clients in every supported deployment, so this bound is
/// never hit in practice; it exists so a spoof-heavy environment
/// cannot grow the map without limit. A reset refunds everyone's
/// burst — briefly generous, never unbounded.
const MAX_PEERS: usize = 1024;

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-client token buckets keyed by peer IP address.
pub struct TokenBuckets {
    burst: f64,
    refill_per_sec: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

/// Outcome of one admission check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Token spent; run the request.
    Admit,
    /// Bucket empty; retry after this many milliseconds.
    Throttle {
        /// Suggested client back-off.
        retry_after_ms: u64,
    },
}

impl TokenBuckets {
    /// Build from config; `quota_burst == 0` means [`TokenBuckets::check`]
    /// always admits.
    pub fn new(cfg: &AdmissionConfig) -> TokenBuckets {
        TokenBuckets {
            burst: cfg.quota_burst as f64,
            refill_per_sec: cfg.quota_refill_per_sec as f64,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spend one token from `peer`'s bucket, refilling first.
    pub fn check(&self, peer: IpAddr) -> Admission {
        self.check_at(peer, Instant::now())
    }

    /// [`TokenBuckets::check`] against an explicit clock, so tests can
    /// drive refill deterministically.
    pub fn check_at(&self, peer: IpAddr, now: Instant) -> Admission {
        if self.burst <= 0.0 {
            return Admission::Admit;
        }
        let mut buckets = self.buckets.lock();
        if buckets.len() >= MAX_PEERS && !buckets.contains_key(&peer) {
            buckets.clear();
        }
        let b = buckets.entry(peer).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(b.last).as_secs_f64();
        b.tokens = (b.tokens + elapsed * self.refill_per_sec).min(self.burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Admission::Admit
        } else {
            let retry_after_ms = if self.refill_per_sec > 0.0 {
                (((1.0 - b.tokens) / self.refill_per_sec) * 1000.0).ceil() as u64
            } else {
                MAX_RETRY_MS
            };
            Admission::Throttle {
                retry_after_ms: retry_after_ms.clamp(1, MAX_RETRY_MS),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, last))
    }

    #[test]
    fn disabled_quota_admits_everything() {
        let b = TokenBuckets::new(&AdmissionConfig::default());
        for _ in 0..1000 {
            assert_eq!(b.check(ip(1)), Admission::Admit);
        }
    }

    #[test]
    fn burst_is_spent_then_throttled_with_retry_after() {
        let cfg = AdmissionConfig {
            quota_burst: 3,
            quota_refill_per_sec: 2,
            queue_deadline_ms: 0,
        };
        let b = TokenBuckets::new(&cfg);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(b.check_at(ip(1), t0), Admission::Admit);
        }
        // Fourth request: empty bucket, and at 2 tokens/s the next
        // token is 500 ms away.
        match b.check_at(ip(1), t0) {
            Admission::Throttle { retry_after_ms } => assert_eq!(retry_after_ms, 500),
            a => panic!("expected throttle, got {a:?}"),
        }
        // Honoring the retry-after admits again.
        assert_eq!(
            b.check_at(ip(1), t0 + Duration::from_millis(500)),
            Admission::Admit
        );
    }

    #[test]
    fn buckets_are_per_peer() {
        let cfg = AdmissionConfig {
            quota_burst: 1,
            quota_refill_per_sec: 0,
            queue_deadline_ms: 0,
        };
        let b = TokenBuckets::new(&cfg);
        let t0 = Instant::now();
        assert_eq!(b.check_at(ip(1), t0), Admission::Admit);
        assert!(matches!(b.check_at(ip(1), t0), Admission::Throttle { .. }));
        // A different peer has its own bucket.
        assert_eq!(b.check_at(ip(2), t0), Admission::Admit);
    }

    #[test]
    fn zero_refill_reports_the_capped_retry() {
        let cfg = AdmissionConfig {
            quota_burst: 1,
            quota_refill_per_sec: 0,
            queue_deadline_ms: 0,
        };
        let b = TokenBuckets::new(&cfg);
        let t0 = Instant::now();
        let _ = b.check_at(ip(1), t0);
        match b.check_at(ip(1), t0) {
            Admission::Throttle { retry_after_ms } => assert_eq!(retry_after_ms, MAX_RETRY_MS),
            a => panic!("expected throttle, got {a:?}"),
        }
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let cfg = AdmissionConfig {
            quota_burst: 2,
            quota_refill_per_sec: 1000,
            queue_deadline_ms: 0,
        };
        let b = TokenBuckets::new(&cfg);
        let t0 = Instant::now();
        // After a long idle period the bucket holds exactly `burst`.
        let later = t0 + Duration::from_secs(60);
        assert_eq!(b.check_at(ip(1), later), Admission::Admit);
        assert_eq!(b.check_at(ip(1), later), Admission::Admit);
        assert!(matches!(b.check_at(ip(1), later), Admission::Throttle { .. }));
    }
}
