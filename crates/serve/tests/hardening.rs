//! Hardening and backpressure tests: garbage bytes cannot panic or
//! wedge a worker, queue-full returns `Busy` without buffering, and
//! shutdown drains accepted work before exiting.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use casted::service_api::JobSpec;
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::cache::CacheConfig;
use casted_serve::client::Client;
use casted_serve::protocol::{encode_request, Request, Response, PROTOCOL_VERSION};
use casted_serve::server::{Server, ServerConfig};

const SRC: &str = "fn main() { var s: int = 0; for i in 0..30 { s = s + i; } out(s); }";

fn spec() -> JobSpec {
    JobSpec {
        source: SRC.into(),
        scheme: Scheme::Casted,
        issue: 2,
        delay: 2,
    }
}

/// A request that keeps one worker busy for a while: a Monte-Carlo
/// campaign on the reference engine re-runs the target from cycle 0
/// once per trial, so the loop count × trial count is a work-duration
/// dial that does not depend on machine speed for correctness (only
/// the *amount* of work is fixed). Sized to hold the worker for well
/// over a second — the backpressure tests below need it still running
/// after several hundred ms of setup sleeps.
fn slow_request(seed: u64) -> Request {
    Request::Inject {
        spec: JobSpec {
            source: "fn main() { var s: int = 0; for i in 0..1200 { s = s + i; } out(s); }"
                .into(),
            scheme: Scheme::Casted,
            issue: 2,
            delay: 2,
        },
        trials: 1500,
        seed,
        engine: Engine::Reference,
    }
}

#[test]
fn garbage_bytes_get_structured_err_and_clean_close() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr();

    // 1. A well-framed payload of garbage: structured Err, then close.
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let reply = c.request_raw(&[0xde, 0xad, 0xbe, 0xef, 0x00]).unwrap();
    match casted_serve::protocol::decode_response(&reply).unwrap() {
        Response::Err(msg) => assert!(msg.contains("bad request"), "{msg}"),
        other => panic!("expected Err reply, got {other:?}"),
    }
    assert_eq!(c.read_reply().unwrap(), None, "server must close after garbage");

    // 2. A frame that decodes to a valid version but a junk tag.
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let reply = c.request_raw(&[PROTOCOL_VERSION, 0x7f]).unwrap();
    assert!(matches!(
        casted_serve::protocol::decode_response(&reply).unwrap(),
        Response::Err(_)
    ));

    // 3. An oversized length prefix: structured Err before any read of
    //    the (absent) payload.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let reply = casted_util::codec::read_frame(&mut raw, 1 << 20)
        .unwrap()
        .expect("structured reply to oversized frame");
    match casted_serve::protocol::decode_response(&reply).unwrap() {
        Response::Err(msg) => assert!(msg.contains("bad frame"), "{msg}"),
        other => panic!("expected Err reply, got {other:?}"),
    }

    // 4. A connection that dies mid-frame: the server just drops it.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xab; 10]).unwrap(); // 90 bytes short
    drop(raw);

    // After all of that abuse, real work still succeeds — no worker is
    // wedged and nothing panicked.
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();
    match c.request(&Request::Compile { spec: spec() }).unwrap() {
        Response::Compiled(r) => assert!(r.bundles > 0),
        other => panic!("expected Compiled, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn queue_full_returns_busy_without_buffering() {
    // One worker, queue of one: request A occupies the worker, B sits
    // in the queue, C must bounce with Busy immediately.
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        cache: CacheConfig {
            byte_budget: 0, // no cache: every request is a miss
            ..CacheConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let a = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request(&slow_request(1)).unwrap()
    });
    // Give A time to reach the worker.
    std::thread::sleep(Duration::from_millis(150));
    let b = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request(&slow_request(2)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    // C arrives while the worker chews A and the queue holds B.
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = std::time::Instant::now();
    let resp_c = c.request(&slow_request(3)).unwrap();
    assert_eq!(resp_c, Response::Busy, "queue-full must bounce immediately");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "Busy must not wait for the queue to drain"
    );

    // A and B still complete correctly — backpressure dropped C only.
    for handle in [a, b] {
        match handle.join().unwrap() {
            Response::Injected(i) => assert_eq!(i.trials, 1500),
            other => panic!("expected Injected, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_work_before_exit() {
    let server = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Occupy the single worker, then queue one more job behind it.
    let early = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request(&slow_request(10)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request(&slow_request(11)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));

    // Ask for shutdown while both jobs are outstanding.
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.request(&Request::Shutdown).unwrap(), Response::ShuttingDown);

    // Both in-flight jobs still get real replies: drain, don't drop.
    for handle in [early, queued] {
        match handle.join().unwrap() {
            Response::Injected(i) => assert_eq!(i.trials, 1500),
            other => panic!("expected Injected, got {other:?}"),
        }
    }

    // New work after the drain is refused or the port is gone.
    match Client::connect(addr) {
        Ok(mut c) => {
            let _ = c.set_timeout(Some(Duration::from_secs(5)));
            match c.request(&Request::Ping) {
                Ok(Response::ShuttingDown) | Err(_) => {}
                Ok(other) => panic!("post-shutdown request answered: {other:?}"),
            }
        }
        Err(_) => {} // listener already closed
    }
    server.wait();
}

#[test]
fn request_raw_roundtrip_matches_typed_path() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let req = Request::Simulate {
        spec: spec(),
        max_cycles: u64::MAX,
    };
    let raw = c.request_raw(&encode_request(&req)).unwrap();
    let typed = c.request(&req).unwrap();
    assert_eq!(
        casted_serve::protocol::decode_response(&raw).unwrap(),
        typed,
        "raw and typed paths must agree"
    );
    server.shutdown();
}
