//! Property tests for the `casted-serve` wire protocol: generated
//! requests and responses round-trip through encode → decode, and the
//! frame layer rejects truncation and oversized lengths. Failures
//! print the workspace-standard `REPLAY seed=0x…` token.

use casted::service_api::{CompileReply, InjectReply, JobSpec, SimulateReply};
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
    MAX_FRAME,
};
use casted_util::codec::{read_frame, write_frame};
use casted_util::rng::Rng;
use casted_util::{prop, prop_assert, prop_assert_eq};

fn gen_source(rng: &mut Rng) -> String {
    // Arbitrary UTF-8, not valid MiniC — the codec must not care.
    let len = rng.gen_range(0usize..200);
    (0..len)
        .map(|_| {
            let c = rng.gen_range(0u32..0x250);
            char::from_u32(c).unwrap_or('\u{FFFD}')
        })
        .collect()
}

fn gen_spec(rng: &mut Rng) -> JobSpec {
    JobSpec {
        source: gen_source(rng),
        scheme: *rng.pick(&[Scheme::Noed, Scheme::Sced, Scheme::Dced, Scheme::Casted]),
        issue: rng.gen_range(0usize..20),
        delay: rng.gen_range(0u32..40),
    }
}

fn gen_request(rng: &mut Rng) -> Request {
    match rng.gen_range(0u32..8) {
        0 => Request::Ping,
        1 => Request::Compile {
            spec: gen_spec(rng),
        },
        2 => Request::Simulate {
            spec: gen_spec(rng),
            max_cycles: rng.next_u64(),
        },
        3 => Request::Inject {
            spec: gen_spec(rng),
            trials: rng.next_u64(),
            seed: rng.next_u64(),
            engine: *rng.pick(&[Engine::Reference, Engine::Checkpointed, Engine::Batched]),
        },
        4 => Request::Counters,
        5 => Request::InjectStream {
            spec: gen_spec(rng),
            trials: rng.next_u64(),
            seed: rng.next_u64(),
            engine: *rng.pick(&[Engine::Reference, Engine::Checkpointed, Engine::Batched]),
            every: rng.next_u64(),
        },
        6 => Request::Cancel,
        _ => Request::Shutdown,
    }
}

fn gen_counts(rng: &mut Rng) -> [u64; 6] {
    [
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
    ]
}

fn gen_response(rng: &mut Rng) -> Response {
    match rng.gen_range(0u32..12) {
        0 => Response::Pong,
        1 => Response::Compiled(CompileReply {
            bundles: rng.next_u64(),
            nop_slots: rng.next_u64(),
            cross_cluster_edges: rng.next_u64(),
            spilled: rng.next_u64(),
            code_growth_permille: rng.next_u64(),
            occupancy: (0..rng.gen_range(0usize..8)).map(|_| rng.next_u64()).collect(),
        }),
        2 => Response::Simulated(SimulateReply {
            cycles: rng.next_u64(),
            dyn_insns: rng.next_u64(),
            bundles: rng.next_u64(),
            stall_cycles: rng.next_u64(),
            cross_reads: rng.next_u64(),
            exit_code: rng.next_u64() as i64,
            stream_len: rng.next_u64(),
            stream_digest: rng.next_u64(),
        }),
        3 => Response::Injected(InjectReply {
            trials: rng.next_u64(),
            counts: gen_counts(rng),
            golden_cycles: rng.next_u64(),
            golden_dyn: rng.next_u64(),
        }),
        4 => Response::Busy,
        5 => Response::Err(gen_source(rng)),
        6 => Response::Counters(gen_source(rng)),
        7 => Response::ShuttingDown,
        8 => Response::Throttled {
            retry_after_ms: rng.next_u64(),
        },
        9 => Response::Expired,
        10 => Response::Progress {
            done: rng.next_u64(),
            counts: gen_counts(rng),
        },
        _ => Response::Cancelled {
            done: rng.next_u64(),
            counts: gen_counts(rng),
        },
    }
}

#[test]
fn prop_request_roundtrip() {
    prop::run_cases("request_roundtrip", 256, |rng| {
        let req = gen_request(rng);
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).map_err(|e| format!("decode failed: {e}"))?;
        prop_assert_eq!(req, back);
        Ok(())
    });
}

#[test]
fn prop_response_roundtrip() {
    prop::run_cases("response_roundtrip", 256, |rng| {
        let resp = gen_response(rng);
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes).map_err(|e| format!("decode failed: {e}"))?;
        prop_assert_eq!(resp, back);
        Ok(())
    });
}

#[test]
fn prop_frame_roundtrip_and_truncation_rejection() {
    prop::run_cases("frame_roundtrip", 128, |rng| {
        let req = gen_request(rng);
        let payload = encode_request(&req);
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).map_err(|e| format!("write: {e}"))?;

        // Full frame reads back.
        let mut cursor = &framed[..];
        let got = read_frame(&mut cursor, MAX_FRAME)
            .map_err(|e| format!("read: {e}"))?
            .ok_or("unexpected EOF")?;
        prop_assert_eq!(&got, &payload);

        // Any strict prefix is either a clean pre-frame EOF (cut == 0)
        // or a truncated-frame error — never a successful read and
        // never a panic.
        let cut = rng.gen_range(0usize..framed.len());
        let mut cursor = &framed[..cut];
        match read_frame(&mut cursor, MAX_FRAME) {
            Ok(None) => prop_assert!(cut == 0, "EOF accepted mid-frame at cut {cut}"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded at cut {cut}"),
            Err(e) => prop_assert!(
                e.kind() == std::io::ErrorKind::UnexpectedEof,
                "cut {cut}: wrong error kind {:?}",
                e.kind()
            ),
        }
        Ok(())
    });
}

/// Exhaustive variant of the truncation property: a streaming-frame
/// payload (Progress/Cancelled) cut at *every* byte boundary — not a
/// sampled one — is rejected, both at the frame layer and at the
/// payload decoder. Incremental frame assembly in the event loop
/// depends on this: a partial read must never decode.
#[test]
fn truncation_at_every_cut_is_rejected() {
    let payloads = [
        encode_response(&Response::Progress {
            done: 12_345,
            counts: [1, 2, 3, u64::MAX, 5, 9],
        }),
        encode_response(&Response::Cancelled {
            done: 700,
            counts: [100, 200, 300, 50, 50, 25],
        }),
        encode_request(&Request::InjectStream {
            spec: JobSpec {
                source: "fn main() { out(1); }".into(),
                scheme: Scheme::Casted,
                issue: 2,
                delay: 2,
            },
            trials: 5_000,
            seed: 0xCA57ED,
            engine: Engine::Batched,
            every: 100,
        }),
        encode_request(&Request::Cancel),
    ];
    for payload in &payloads {
        let mut framed = Vec::new();
        write_frame(&mut framed, payload).unwrap();
        for cut in 0..framed.len() {
            let mut cursor = &framed[..cut];
            match read_frame(&mut cursor, MAX_FRAME) {
                Ok(None) => assert_eq!(cut, 0, "EOF accepted mid-frame at cut {cut}"),
                Ok(Some(_)) => panic!("truncated frame decoded at cut {cut}"),
                Err(e) => assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::UnexpectedEof,
                    "cut {cut}: wrong error kind"
                ),
            }
        }
        for cut in 0..payload.len() {
            // A truncated payload must decode to an error (empty input
            // included), never to a value and never to a panic.
            assert!(
                decode_request(&payload[..cut]).is_err()
                    || decode_response(&payload[..cut]).is_err(),
                "payload cut at {cut} decoded on both decoders"
            );
            if let Ok(req) = decode_request(&payload[..cut]) {
                assert_eq!(encode_request(&req), &payload[..cut]);
            }
            if let Ok(resp) = decode_response(&payload[..cut]) {
                assert_eq!(encode_response(&resp), &payload[..cut]);
            }
        }
    }
}

#[test]
fn prop_oversized_length_rejected_without_allocation() {
    prop::run_cases("oversized_length", 128, |rng| {
        let over = rng.gen_range(MAX_FRAME as u64 + 1..=u32::MAX as u64) as u32;
        let mut framed = over.to_le_bytes().to_vec();
        // A few garbage payload bytes — far fewer than the length
        // claims, so accepting the length would mean a huge allocation
        // and a blocking read.
        framed.extend_from_slice(&[0xAB; 16]);
        let mut cursor = &framed[..];
        match read_frame(&mut cursor, MAX_FRAME) {
            Err(e) => prop_assert!(
                e.kind() == std::io::ErrorKind::InvalidData,
                "length {over}: wrong error kind {:?}",
                e.kind()
            ),
            Ok(r) => prop_assert!(false, "oversized length {over} accepted: {r:?}"),
        }
        Ok(())
    });
}

#[test]
fn prop_decoder_survives_garbage_payloads() {
    prop::run_cases("garbage_payloads", 512, |rng| {
        let len = rng.gen_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        // Must return Ok or Err, never panic; and whatever decodes must
        // re-encode to the exact input (canonical encoding).
        if let Ok(req) = decode_request(&bytes) {
            prop_assert_eq!(encode_request(&req), bytes);
        }
        if let Ok(resp) = decode_response(&bytes) {
            prop_assert_eq!(encode_response(&resp), bytes);
        }
        Ok(())
    });
}
