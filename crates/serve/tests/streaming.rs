//! Integration tests for the streaming-campaign protocol extension
//! and structured admission control, over real loopback TCP, in both
//! connection models (event-driven and thread-per-connection).
//!
//! The core contracts under test:
//! * the terminal frame of a streaming campaign is **byte-identical**
//!   to the non-streaming `Inject` reply for the same job;
//! * cancelling mid-campaign yields a `Cancelled` whose partial tally
//!   prefix-matches an uncancelled run's progress at the same trial
//!   count, and leaves the server fully healthy;
//! * token-bucket quota exhaustion yields `Throttled` with a finite
//!   retry hint; queue-deadline expiry yields `Expired` without the
//!   job ever executing;
//! * graceful shutdown drains promptly — it is driven by wakeups, not
//!   sleep timing.

use std::time::{Duration, Instant};

use casted::service_api::JobSpec;
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::admission::AdmissionConfig;
use casted_serve::client::Client;
use casted_serve::protocol::{decode_response, encode_request, Request, Response};
use casted_serve::server::{ConnModel, Server, ServerConfig};

const SRC: &str = "fn main() { var s: int = 0; for i in 0..40 { s = s + i * i; } out(s); }";

const MODELS: [ConnModel; 2] = [ConnModel::Event, ConnModel::Threads];

fn spec() -> JobSpec {
    JobSpec {
        source: SRC.into(),
        scheme: Scheme::Casted,
        issue: 2,
        delay: 2,
    }
}

fn start(model: ConnModel) -> Server {
    Server::start(ServerConfig {
        conn_model: model,
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn stream_req(trials: u64, every: u64) -> Request {
    Request::InjectStream {
        spec: spec(),
        trials,
        seed: 0xCA57ED,
        engine: Engine::default(),
        every,
    }
}

/// Drive a streaming request frame by frame, returning the raw reply
/// payloads up to and including the terminal frame.
fn stream_frames(client: &mut Client, req: &Request) -> Vec<Vec<u8>> {
    client.send_raw(&encode_request(req)).unwrap();
    let mut frames = Vec::new();
    loop {
        let payload = client
            .read_reply()
            .unwrap()
            .expect("server closed mid-stream");
        let terminal = decode_response(&payload).unwrap().terminal();
        frames.push(payload);
        if terminal {
            return frames;
        }
    }
}

#[test]
fn streaming_final_frame_is_byte_identical_to_non_streaming_reply() {
    for model in MODELS {
        let server = start(model);
        let mut client = Client::connect(server.addr()).unwrap();

        let frames = stream_frames(&mut client, &stream_req(200, 50));
        let (progress, terminal) = frames.split_at(frames.len() - 1);
        assert!(
            !progress.is_empty(),
            "{model:?}: a 200-trial campaign at every=50 must emit progress frames"
        );
        let mut last_done = 0;
        for frame in progress {
            match decode_response(frame).unwrap() {
                Response::Progress { done, counts } => {
                    assert!(done > last_done, "{model:?}: progress must be monotone");
                    assert_eq!(done % 50, 0, "{model:?}: chunks land on every-boundaries");
                    assert_eq!(
                        counts.iter().sum::<u64>(),
                        done,
                        "{model:?}: tally must account for every completed trial"
                    );
                    last_done = done;
                }
                other => panic!("{model:?}: unexpected mid-stream frame {other:?}"),
            }
        }

        // The exact bytes a non-streaming Inject writes for this job.
        let plain = client
            .request_raw(&encode_request(&Request::Inject {
                spec: spec(),
                trials: 200,
                seed: 0xCA57ED,
                engine: Engine::default(),
            }))
            .unwrap();
        assert_eq!(
            terminal[0], plain,
            "{model:?}: streaming terminal frame must be byte-identical to the \
             non-streaming reply"
        );
        server.shutdown();
    }
}

#[test]
fn cancel_mid_campaign_prefix_matches_and_server_stays_healthy() {
    for model in MODELS {
        let server = start(model);
        let addr = server.addr();
        let req = stream_req(5_000, 25);

        // Reference run, uncancelled: record the tally at every chunk.
        let mut reference = Client::connect(addr).unwrap();
        let mut tally_at = std::collections::HashMap::new();
        for frame in stream_frames(&mut reference, &req) {
            if let Response::Progress { done, counts } = decode_response(&frame).unwrap() {
                tally_at.insert(done, counts);
            }
        }

        // Cancelled run: stop at the first progress frame.
        let mut client = Client::connect(addr).unwrap();
        let terminal = client
            .request_stream(&req, &mut |_done, _counts| false)
            .unwrap();
        let Response::Cancelled { done, counts } = terminal else {
            panic!("{model:?}: expected Cancelled, got {terminal:?}");
        };
        assert!(
            done > 0 && done < 5_000,
            "{model:?}: cancel must land mid-campaign (done={done})"
        );
        assert_eq!(
            Some(&counts),
            tally_at.get(&done),
            "{model:?}: partial tally must prefix-match the uncancelled run at {done} trials"
        );

        // The same connection keeps working after a cancel...
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));
        // ...and so does real work on a fresh connection.
        let mut fresh = Client::connect(addr).unwrap();
        match fresh
            .request(&Request::Simulate {
                spec: spec(),
                max_cycles: u64::MAX,
            })
            .unwrap()
        {
            Response::Simulated(_) => {}
            other => panic!("{model:?}: post-cancel simulate failed: {other:?}"),
        }
        server.shutdown();
    }
}

#[test]
fn cancel_without_a_stream_is_a_structured_error() {
    for model in MODELS {
        let server = start(model);
        let mut client = Client::connect(server.addr()).unwrap();
        match client.request(&Request::Cancel).unwrap() {
            Response::Err(msg) => assert!(
                msg.contains("no streaming campaign"),
                "{model:?}: unexpected message {msg:?}"
            ),
            other => panic!("{model:?}: expected Err, got {other:?}"),
        }
        server.shutdown();
    }
}

#[test]
fn quota_exhaustion_yields_throttled_with_retry_hint() {
    for model in MODELS {
        let server = Server::start(ServerConfig {
            conn_model: model,
            workers: 2,
            admission: AdmissionConfig {
                quota_burst: 2,
                quota_refill_per_sec: 1,
                queue_deadline_ms: 0,
            },
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let mut client = Client::connect(server.addr()).unwrap();

        // Distinct sources so every request is a cache miss (hits are
        // free and do not consume quota).
        let work = |i: u64| Request::Simulate {
            spec: JobSpec {
                source: format!("fn main() {{ out({i}); }}"),
                scheme: Scheme::Casted,
                issue: 2,
                delay: 2,
            },
            max_cycles: u64::MAX,
        };
        for i in 0..2 {
            match client.request(&work(i)).unwrap() {
                Response::Simulated(_) => {}
                other => panic!("{model:?}: burst request {i} rejected: {other:?}"),
            }
        }
        match client.request(&work(2)).unwrap() {
            Response::Throttled { retry_after_ms } => assert!(
                retry_after_ms > 0 && retry_after_ms <= 3_600_000,
                "{model:?}: retry hint out of range: {retry_after_ms}"
            ),
            other => panic!("{model:?}: expected Throttled, got {other:?}"),
        }

        // Control traffic is never quota-limited.
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));
        // Cache hits are free: re-request admitted work while throttled.
        match client.request(&work(0)).unwrap() {
            Response::Simulated(_) => {}
            other => panic!("{model:?}: cache hit must bypass quota: {other:?}"),
        }
        server.shutdown();
    }
}

#[test]
fn queue_deadline_drops_stale_jobs_before_execution() {
    casted_obs::set_enabled(true);
    for model in MODELS {
        let server = Server::start(ServerConfig {
            conn_model: model,
            workers: 1, // single worker: the stream below occupies it
            admission: AdmissionConfig {
                quota_burst: 0,
                quota_refill_per_sec: 0,
                queue_deadline_ms: 1,
            },
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let addr = server.addr();

        // Occupy the only worker with a streaming campaign...
        let mut a = Client::connect(addr).unwrap();
        a.send_raw(&encode_request(&stream_req(3_000, 50))).unwrap();
        let first = a.read_reply().unwrap().expect("stream start");
        assert!(matches!(
            decode_response(&first).unwrap(),
            Response::Progress { .. }
        ));

        // ...then queue a job that can only wait (and go stale).
        let tag = match model {
            ConnModel::Event => 7,
            ConnModel::Threads => 8,
        };
        let mut b = Client::connect(addr).unwrap();
        b.send_raw(&encode_request(&Request::Simulate {
            spec: JobSpec {
                source: format!("fn main() {{ out({tag}); }}"),
                scheme: Scheme::Casted,
                issue: 2,
                delay: 2,
            },
            max_cycles: u64::MAX,
        }))
        .unwrap();

        // Drain A to its terminal so the worker reaches B's job.
        loop {
            let frame = a.read_reply().unwrap().expect("mid-stream EOF");
            if decode_response(&frame).unwrap().terminal() {
                break;
            }
        }
        let reply = decode_response(&b.read_reply().unwrap().unwrap()).unwrap();
        assert!(
            matches!(reply, Response::Expired),
            "{model:?}: stale queued job must expire, got {reply:?}"
        );

        // The drop is observable.
        let expired = match a.request(&Request::Counters).unwrap() {
            Response::Counters(json) => json
                .split("\"serve.admission.expired\": ")
                .nth(1)
                .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0),
            other => panic!("{model:?}: unexpected counters reply {other:?}"),
        };
        assert!(
            expired >= 1,
            "{model:?}: serve.admission.expired must count the drop"
        );
        server.shutdown();
    }
}

#[test]
fn shutdown_drains_on_wakeups_not_sleep_timing() {
    for model in MODELS {
        let server = start(model);
        let addr = server.addr();

        // Idle connections plus one completed request: the drain must
        // not wait on any of them, and must not poll-sleep either.
        let _idle: Vec<Client> = (0..4).map(|_| Client::connect(addr).unwrap()).collect();
        let mut client = Client::connect(addr).unwrap();
        match client
            .request(&Request::Simulate {
                spec: spec(),
                max_cycles: u64::MAX,
            })
            .unwrap()
        {
            Response::Simulated(_) => {}
            other => panic!("{model:?}: warm-up failed: {other:?}"),
        }

        let start = Instant::now();
        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        server.wait();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "{model:?}: drain took {elapsed:?}; shutdown must be wakeup-driven, \
             not sleep-polled"
        );
    }
}
