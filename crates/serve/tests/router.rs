//! Integration tests for the shard router over real loopback TCP:
//! routed replies are byte-identical to a single-process server's,
//! routing is consistent (no duplicated cache entries across shards),
//! and streaming + cancellation work through the relay.
//!
//! The router requires the event backend; on targets without it these
//! tests are skipped at runtime via `poll::available()`.

use std::collections::HashMap;
use std::sync::Mutex;

use casted::service_api::JobSpec;
use casted::Scheme;
use casted_faults::Engine;
use casted_serve::client::Client;
use casted_serve::protocol::{decode_response, encode_request, Request, Response};
use casted_serve::router::{Router, RouterConfig};
use casted_serve::server::{Server, ServerConfig};
use casted_util::poll;

/// Counter-sensitive tests share the process-global obs registry;
/// serialize them so deltas are attributable.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn start_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn start_fleet(shards: usize) -> (Vec<Server>, Router) {
    let servers: Vec<Server> = (0..shards).map(|_| start_server()).collect();
    let router = Router::start(RouterConfig {
        shards: servers.iter().map(|s| s.addr().to_string()).collect(),
        loops: 2,
        ..RouterConfig::default()
    })
    .expect("router start");
    (servers, router)
}

fn spec(i: u64) -> JobSpec {
    JobSpec {
        source: format!("fn main() {{ var s: int = {i}; for i in 0..30 {{ s = s + i * i; }} out(s); }}"),
        scheme: Scheme::Casted,
        issue: 2,
        delay: 2,
    }
}

fn workload() -> Vec<Request> {
    let mut reqs = Vec::new();
    for i in 0..8u64 {
        reqs.push(Request::Simulate {
            spec: spec(i),
            max_cycles: u64::MAX,
        });
    }
    reqs.push(Request::Compile { spec: spec(100) });
    reqs.push(Request::Inject {
        spec: spec(200),
        trials: 25,
        seed: 9,
        engine: Engine::default(),
    });
    reqs
}

#[test]
fn routed_replies_are_byte_identical_to_single_process() {
    if !poll::available() {
        eprintln!("poll backend unavailable; skipping router test");
        return;
    }
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let direct_server = start_server();
    let (shards, router) = start_fleet(2);
    let mut direct = Client::connect(direct_server.addr()).unwrap();
    let mut routed = Client::connect(router.addr()).unwrap();

    for req in workload() {
        let payload = encode_request(&req);
        let want = direct.request_raw(&payload).unwrap();
        let got = routed.request_raw(&payload).unwrap();
        assert_eq!(want, got, "routed reply differed for {req:?}");
        // And again: the second pass is a shard cache hit, still
        // byte-identical through the relay.
        let again = routed.request_raw(&payload).unwrap();
        assert_eq!(want, again, "routed cache hit differed for {req:?}");
        assert!(decode_response(&want).unwrap().cacheable());
    }

    // Router-local control plane.
    assert!(matches!(
        routed.request(&Request::Ping).unwrap(),
        Response::Pong
    ));
    match routed.request(&Request::Counters).unwrap() {
        Response::Counters(json) => assert!(
            json.contains("\"counters\""),
            "router counters should be a snapshot document, got {json:?}"
        ),
        other => panic!("unexpected counters reply {other:?}"),
    }

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
    direct_server.shutdown();
}

#[test]
fn routing_is_consistent_so_shards_never_duplicate_cache_entries() {
    if !poll::available() {
        eprintln!("poll backend unavailable; skipping router test");
        return;
    }
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    casted_obs::set_enabled(true);
    let (shards, router) = start_fleet(4);
    let mut client = Client::connect(router.addr()).unwrap();

    let payloads: Vec<Vec<u8>> = (0..24u64)
        .map(|i| {
            encode_request(&Request::Simulate {
                spec: spec(1_000 + i),
                max_cycles: u64::MAX,
            })
        })
        .collect();

    let cache_hits = || -> u64 {
        casted_obs::snapshot_json()
            .split("\"serve.cache.hit\": ")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };

    // First pass computes (all misses), second pass must be all hits:
    // with content-hash routing every repeat lands on the shard that
    // already owns the entry. The shards share this process's counter
    // registry, so the delta is the fleet-wide hit count.
    for p in &payloads {
        let reply = client.request_raw(p).unwrap();
        assert!(decode_response(&reply).unwrap().cacheable());
    }
    let before = cache_hits();
    for p in &payloads {
        client.request_raw(p).unwrap();
    }
    let after = cache_hits();
    assert_eq!(
        after - before,
        payloads.len() as u64,
        "every repeated request must hit exactly one shard's cache"
    );

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn streaming_and_cancel_work_through_the_router() {
    if !poll::available() {
        eprintln!("poll backend unavailable; skipping router test");
        return;
    }
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (shards, router) = start_fleet(2);
    let mut client = Client::connect(router.addr()).unwrap();

    let req = Request::InjectStream {
        spec: spec(7),
        trials: 2_000,
        seed: 0xCA57ED,
        engine: Engine::default(),
        every: 25,
    };

    // Full run through the relay: progress frames arrive, terminal is
    // byte-identical to the non-streaming reply from the same fleet.
    let mut tally_at = HashMap::new();
    client.send_raw(&encode_request(&req)).unwrap();
    let terminal_bytes = loop {
        let frame = client.read_reply().unwrap().expect("mid-stream EOF");
        match decode_response(&frame).unwrap() {
            Response::Progress { done, counts } => {
                tally_at.insert(done, counts);
            }
            _ => break frame,
        }
    };
    assert!(!tally_at.is_empty(), "expected progress frames via router");
    let plain = client
        .request_raw(&encode_request(&Request::Inject {
            spec: spec(7),
            trials: 2_000,
            seed: 0xCA57ED,
            engine: Engine::default(),
        }))
        .unwrap();
    assert_eq!(
        terminal_bytes, plain,
        "streamed terminal frame must match the non-streaming reply through the router"
    );

    // Cancel mid-campaign through the relay; the tally prefix-matches
    // and the connection stays usable.
    let terminal = client.request_stream(&req, &mut |_d, _c| false).unwrap();
    let Response::Cancelled { done, counts } = terminal else {
        panic!("expected Cancelled through router, got {terminal:?}");
    };
    assert!(done > 0 && done < 2_000, "cancel must land mid-campaign");
    assert_eq!(
        Some(&counts),
        tally_at.get(&done),
        "router-relayed partial tally must prefix-match the full run"
    );
    assert!(matches!(
        client.request(&Request::Ping).unwrap(),
        Response::Pong
    ));
    match client
        .request(&Request::Simulate {
            spec: spec(7),
            max_cycles: u64::MAX,
        })
        .unwrap()
    {
        Response::Simulated(_) => {}
        other => panic!("post-cancel routed request failed: {other:?}"),
    }

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}
