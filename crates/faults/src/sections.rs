//! Compositional (incremental) fault campaigns with an on-disk
//! content-addressed section cache — FastFlip's observation applied
//! to the Monte-Carlo campaigns of §IV-C: per-section injection
//! results compose, so after an edit only the sections whose code
//! actually changed need re-injection.
//!
//! ## How a campaign decomposes
//!
//! The golden dynamic trace is cut into sections at block entries
//! (`casted_sim::section`); every trial of the frozen injection
//! stream belongs to exactly one section (the one owning its `at`
//! site). Per section the store keeps one [`SectionRecord`]: the
//! per-trial *evidence* — not the final [`Outcome`] — in trial order,
//! plus the validation list of blocks the section's golden span and
//! trial runs visited.
//!
//! Evidence comes in three shapes, and the split is what makes
//! recombination **byte-identical to a cold campaign** (the headline
//! claim, enforced at four levels — see `docs/INCREMENTAL.md`):
//!
//! * [`TrialEntry::Resolved`] — Detected / Exception / Timeout stops,
//!   and convergence-proved Benign. These classifications cannot
//!   depend on anything outside the (validated) section.
//! * [`TrialEntry::Halted`] — the trial halted in-span. Halts
//!   classify *against the current golden run* (exit code + output
//!   stream), which an edit downstream of the section can change, so
//!   the record stores the raw halt evidence and classification
//!   happens at recombine time.
//! * [`TrialEntry::Escaped`] — the trial left its span still
//!   diverged. Nothing in-span can classify it; the *first* recombine
//!   replays it against the whole-program golden trace (the
//!   checkpointed-engine path) and caches the replay's verdict as
//!   [`EscapeEvidence`] with its own validation list — the blocks the
//!   replay touched after the fault landed (plus, for a pruned
//!   replay, the golden path up to the convergence point). Later
//!   recombines re-replay only the escapes an edit actually
//!   invalidated.
//!
//! A fully-warm rerun goes further: a [`ProgramRecord`] keyed by the
//! *entire program content* ([`program_key`]) caches the golden run's
//! summary (cycles, dynamic length, exit code, output stream) and the
//! section partition, so when every consulted section — escape
//! evidence included — validates, the campaign recombines without
//! simulating a single cycle, golden run included.
//!
//! ## Cache key and invalidation
//!
//! A record is addressed by [`section_key`]: an Fnv64 hash of the
//! store format version, the machine config, the watchdog bound, the
//! golden run's shape (`cycles`/`dyn`), the section bounds, an
//! *unmasked digest of the section-start machine state* (binding
//! everything upstream), and the section's injection-stream slice. A
//! lookup additionally validates that every block the recorded runs
//! visited still has the same code hash and live-in-mask hash on the
//! current program; any mismatch is a miss and the section is
//! re-injected. Records carry a whole-file checksum — a corrupted
//! byte anywhere turns the record into a miss, never a wrong tally
//! (the sabotage self-test below pins this).

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use casted_ir::interp::{OutVal, StopReason};
use casted_ir::vliw::ScheduledProgram;
use casted_ir::RegClass;
use casted_sim::section::{block_validation_hashes, capture_sections, run_section_trial, SectionTrial};
use casted_sim::{golden_with_checkpoints, replay_trial_observed, GoldenTrace, Injection, TrialRun};
use casted_util::codec::{get_ivarint, get_uvarint, put_ivarint, put_uvarint};
use casted_util::hash::{fnv1a, Fnv64};
use casted_util::pool::run_pool;
use casted_util::Rng;

use crate::{classify, CampaignConfig, CampaignResult, EngineStats, Outcome, Tally};

/// Bumped on any change to the record encoding *or* to the meaning of
/// any hashed key component (hash inputs, digest coverage, section
/// cutting policy). Part of the key, so stale-format records simply
/// miss instead of decoding garbage.
pub const STORE_FORMAT_VERSION: u64 = 2;

/// Section-cache accounting for one incremental campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SectionStats {
    /// Sections in the campaign's partition of the golden trace.
    pub total: u64,
    /// Consulted sections whose cached record validated (no
    /// re-injection).
    pub hit: u64,
    /// Consulted sections re-injected (no record, stale record,
    /// failed integrity or block validation).
    pub miss: u64,
    /// Trials whose evidence came from cached records rather than
    /// fresh injection.
    pub recombined: u64,
}

/// Stored per-trial evidence (see the module docs for why halts stay
/// raw while the other stops are pre-resolved).
#[derive(Clone, Debug, PartialEq)]
pub enum TrialEntry {
    /// Section-local classification: Detected, Exception, Timeout, or
    /// convergence-proved Benign.
    Resolved(Outcome),
    /// Halted in-span; classified against the current golden run at
    /// recombine time.
    Halted { code: i64, stream: Vec<OutVal> },
    /// Left the span diverged. `None` until the first recombine's
    /// whole-program replay; afterwards the replay's cached verdict,
    /// reused while its own validation list holds.
    Escaped(Option<EscapeEvidence>),
}

/// How an escaped trial's whole-program replay ended.
#[derive(Clone, Debug, PartialEq)]
pub enum EscapeOutcome {
    /// Golden-independent stop: Detected, Exception or Timeout.
    Resolved(Outcome),
    /// Ran to a halt; classified against the current golden run at
    /// recombine time (same rule as [`TrialEntry::Halted`]).
    Halted { code: i64, stream: Vec<OutVal> },
    /// Re-converged with the golden run: provably Benign.
    Converged,
}

/// Cached whole-program replay verdict for one escaped trial, plus
/// the extra validation surface beyond the section's own list: the
/// blocks the replay visited *after the fault landed* — the faulty
/// suffix is instruction-identical while they are unchanged — and,
/// for a converged verdict, the golden blocks between the span exit
/// and the convergence point (the stored Benign also asserts what the
/// *golden* state there is).
#[derive(Clone, Debug, PartialEq)]
pub struct EscapeEvidence {
    /// The replay's verdict.
    pub outcome: EscapeOutcome,
    /// `(block index, code hash, live-mask hash)` triples that must
    /// match the current program for the verdict to be reusable.
    pub validation: Vec<(u32, u64, u64)>,
}

/// Whole-program cache entry: the golden run's summary and the
/// section partition, keyed by [`program_key`] (the full program
/// content). With a validated program record and every consulted
/// section record intact, a warm rerun skips the golden simulation
/// and the section capture entirely.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramRecord {
    /// Fault-free cycle count.
    pub golden_cycles: u64,
    /// Fault-free dynamic instruction count.
    pub golden_dyn: u64,
    /// Fault-free exit code.
    pub halt_code: i64,
    /// Fault-free output stream (halt-evidence classification target).
    pub stream: Vec<OutVal>,
    /// Per section `(lo, hi, start_digest)`, in trace order.
    pub partition: Vec<(u64, u64, u64)>,
}

/// Content hash addressing a [`ProgramRecord`]: everything that
/// determines the golden run and the section partition. The per-block
/// hashes cover the scheduled code (instructions, clusters, exact
/// immediates — global *addresses* included) and the live-in masks;
/// the globals' initial images, layout and the register-file sizes
/// are hashed explicitly because no block hash covers them.
pub fn program_key(sp: &ScheduledProgram, hashes: &[(u64, u64)]) -> u64 {
    let func = sp.module.entry_fn();
    let mut h = Fnv64::new();
    h.write_u64(STORE_FORMAT_VERSION);
    h.write(format!("{:?}", sp.config).as_bytes());
    h.write_u64(func.entry.index() as u64);
    h.write_u64(hashes.len() as u64);
    for &(code, live) in hashes {
        h.write_u64(code);
        h.write_u64(live);
    }
    h.write_u64(sp.module.data_end() as u64);
    h.write_u64(sp.module.globals.len() as u64);
    for g in &sp.module.globals {
        h.write(format!("{:?}", g.class).as_bytes());
        h.write_u64(g.len as u64);
        h.write_u64(g.addr as u64);
        h.write_u64(g.init.len() as u64);
        for &v in &g.init {
            h.write_u64(v as u64);
        }
    }
    for class in [RegClass::Gp, RegClass::Fp, RegClass::Pr] {
        h.write_u64(func.reg_count(class) as u64);
    }
    h.finish()
}

/// One cached section: per-trial evidence in trial order plus the
/// validation list `(block index, code hash, live-mask hash)` for
/// every block the golden span or any trial visited.
#[derive(Clone, Debug, PartialEq)]
pub struct SectionRecord {
    /// Entries, one per trial of the section's injection slice.
    pub entries: Vec<TrialEntry>,
    /// Blocks whose current-program hashes must match for reuse.
    pub validation: Vec<(u32, u64, u64)>,
}

/// Content hash addressing one section's record. Every input that
/// could change the bounded trial runs is mixed in; two programs (or
/// two edits of one program) share a record exactly when the section
/// is provably equivalent for these trials.
#[allow(clippy::too_many_arguments)]
pub fn section_key(
    sp: &ScheduledProgram,
    max_cycles: u64,
    golden_cycles: u64,
    golden_dyn: u64,
    lo: u64,
    hi: u64,
    start_digest: u64,
    injections: &[Injection],
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(STORE_FORMAT_VERSION);
    // MachineConfig derives Debug over every field; the Debug form is
    // injective on its values and hashed once per section.
    h.write(format!("{:?}", sp.config).as_bytes());
    h.write_u64(max_cycles);
    // golden cycles/dyn pin the watchdog bound and the sampling
    // cadence the capture derived (a per-section view alone would not
    // imply them).
    h.write_u64(golden_cycles);
    h.write_u64(golden_dyn);
    h.write_u64(lo);
    h.write_u64(hi);
    h.write_u64(start_digest);
    h.write_u64(injections.len() as u64);
    for inj in injections {
        h.write_u64(inj.at_dyn_insn);
        h.write_u64(inj.bit as u64);
    }
    h.finish()
}

fn put_stream(buf: &mut Vec<u8>, stream: &[OutVal]) {
    put_uvarint(buf, stream.len() as u64);
    for v in stream {
        match v {
            OutVal::Int(i) => {
                put_uvarint(buf, 0);
                put_uvarint(buf, *i as u64);
            }
            OutVal::Float(f) => {
                put_uvarint(buf, 1);
                put_uvarint(buf, f.to_bits());
            }
        }
    }
}

fn get_stream(payload: &[u8], pos: &mut usize) -> Option<Vec<OutVal>> {
    let len = get_uvarint(payload, pos)?;
    let mut stream = Vec::with_capacity(len.min(1 << 20) as usize);
    for _ in 0..len {
        stream.push(match get_uvarint(payload, pos)? {
            0 => OutVal::Int(get_uvarint(payload, pos)? as i64),
            1 => OutVal::Float(f64::from_bits(get_uvarint(payload, pos)?)),
            _ => return None,
        });
    }
    Some(stream)
}

fn put_validation(buf: &mut Vec<u8>, validation: &[(u32, u64, u64)]) {
    put_uvarint(buf, validation.len() as u64);
    for &(block, code, live) in validation {
        put_uvarint(buf, block as u64);
        put_uvarint(buf, code);
        put_uvarint(buf, live);
    }
}

fn get_validation(payload: &[u8], pos: &mut usize) -> Option<Vec<(u32, u64, u64)>> {
    let n = get_uvarint(payload, pos)?;
    let mut validation = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        let block = get_uvarint(payload, pos)?;
        let code = get_uvarint(payload, pos)?;
        let live = get_uvarint(payload, pos)?;
        validation.push((u32::try_from(block).ok()?, code, live));
    }
    Some(validation)
}

fn encode_record(key: u64, rec: &SectionRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    put_uvarint(&mut buf, STORE_FORMAT_VERSION);
    put_uvarint(&mut buf, key);
    put_uvarint(&mut buf, rec.entries.len() as u64);
    for e in &rec.entries {
        match e {
            TrialEntry::Resolved(o) => {
                put_uvarint(&mut buf, 0);
                put_uvarint(&mut buf, o.index() as u64);
            }
            TrialEntry::Halted { code, stream } => {
                put_uvarint(&mut buf, 1);
                put_ivarint(&mut buf, *code);
                put_stream(&mut buf, stream);
            }
            TrialEntry::Escaped(ev) => {
                put_uvarint(&mut buf, 2);
                match ev {
                    None => put_uvarint(&mut buf, 0),
                    Some(ev) => {
                        put_uvarint(&mut buf, 1);
                        match &ev.outcome {
                            EscapeOutcome::Resolved(o) => {
                                put_uvarint(&mut buf, 0);
                                put_uvarint(&mut buf, o.index() as u64);
                            }
                            EscapeOutcome::Halted { code, stream } => {
                                put_uvarint(&mut buf, 1);
                                put_ivarint(&mut buf, *code);
                                put_stream(&mut buf, stream);
                            }
                            EscapeOutcome::Converged => put_uvarint(&mut buf, 2),
                        }
                        put_validation(&mut buf, &ev.validation);
                    }
                }
            }
        }
    }
    put_validation(&mut buf, &rec.validation);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_record(key: u64, bytes: &[u8]) -> Option<SectionRecord> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    if fnv1a(payload) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut pos = 0;
    if get_uvarint(payload, &mut pos)? != STORE_FORMAT_VERSION {
        return None;
    }
    if get_uvarint(payload, &mut pos)? != key {
        return None;
    }
    let n = get_uvarint(payload, &mut pos)?;
    let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        entries.push(match get_uvarint(payload, &mut pos)? {
            0 => TrialEntry::Resolved(*Outcome::ALL.get(get_uvarint(payload, &mut pos)? as usize)?),
            1 => {
                let code = get_ivarint(payload, &mut pos)?;
                TrialEntry::Halted { code, stream: get_stream(payload, &mut pos)? }
            }
            2 => match get_uvarint(payload, &mut pos)? {
                0 => TrialEntry::Escaped(None),
                1 => {
                    let outcome = match get_uvarint(payload, &mut pos)? {
                        0 => EscapeOutcome::Resolved(
                            *Outcome::ALL.get(get_uvarint(payload, &mut pos)? as usize)?,
                        ),
                        1 => {
                            let code = get_ivarint(payload, &mut pos)?;
                            EscapeOutcome::Halted { code, stream: get_stream(payload, &mut pos)? }
                        }
                        2 => EscapeOutcome::Converged,
                        _ => return None,
                    };
                    let validation = get_validation(payload, &mut pos)?;
                    TrialEntry::Escaped(Some(EscapeEvidence { outcome, validation }))
                }
                _ => return None,
            },
            _ => return None,
        });
    }
    let validation = get_validation(payload, &mut pos)?;
    // Strictly canonical: trailing bytes mean a foreign or damaged
    // record, not a shorter one.
    if pos != payload.len() {
        return None;
    }
    Some(SectionRecord { entries, validation })
}

fn encode_program(key: u64, rec: &ProgramRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    put_uvarint(&mut buf, STORE_FORMAT_VERSION);
    put_uvarint(&mut buf, key);
    put_uvarint(&mut buf, rec.golden_cycles);
    put_uvarint(&mut buf, rec.golden_dyn);
    put_ivarint(&mut buf, rec.halt_code);
    put_stream(&mut buf, &rec.stream);
    put_uvarint(&mut buf, rec.partition.len() as u64);
    for &(lo, hi, digest) in &rec.partition {
        put_uvarint(&mut buf, lo);
        put_uvarint(&mut buf, hi);
        put_uvarint(&mut buf, digest);
    }
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_program(key: u64, bytes: &[u8]) -> Option<ProgramRecord> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    if fnv1a(payload) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut pos = 0;
    if get_uvarint(payload, &mut pos)? != STORE_FORMAT_VERSION {
        return None;
    }
    if get_uvarint(payload, &mut pos)? != key {
        return None;
    }
    let golden_cycles = get_uvarint(payload, &mut pos)?;
    let golden_dyn = get_uvarint(payload, &mut pos)?;
    let halt_code = get_ivarint(payload, &mut pos)?;
    let stream = get_stream(payload, &mut pos)?;
    let n = get_uvarint(payload, &mut pos)?;
    let mut partition = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        let lo = get_uvarint(payload, &mut pos)?;
        let hi = get_uvarint(payload, &mut pos)?;
        let digest = get_uvarint(payload, &mut pos)?;
        partition.push((lo, hi, digest));
    }
    if pos != payload.len() {
        return None;
    }
    Some(ProgramRecord { golden_cycles, golden_dyn, halt_code, stream, partition })
}

/// On-disk content-addressed store: one file per section key under a
/// flat directory, `"{key:016x}.sect"`, encoded with the canonical
/// codec and protected by a whole-file FNV checksum. `casted_util`
/// and `std` only.
pub struct SectionStore {
    dir: PathBuf,
}

impl SectionStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: &Path) -> io::Result<SectionStore> {
        std::fs::create_dir_all(dir)?;
        Ok(SectionStore { dir: dir.to_path_buf() })
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.sect"))
    }

    fn prog_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.prog"))
    }

    /// Load and integrity-check a record. Any damage — truncation, a
    /// flipped byte, a foreign format — returns `None` (a cache miss),
    /// never a wrong record.
    pub fn load(&self, key: u64) -> Option<SectionRecord> {
        let bytes = std::fs::read(self.path(key)).ok()?;
        decode_record(key, &bytes)
    }

    /// Persist a record atomically (temp file + rename), so a reader
    /// never observes a half-written record even across concurrent
    /// campaigns sharing the directory.
    pub fn save(&self, key: u64, rec: &SectionRecord) -> io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, encode_record(key, rec))?;
        std::fs::rename(&tmp, self.path(key))
    }

    /// Load and integrity-check a program record; any damage is a
    /// miss, exactly like [`SectionStore::load`].
    pub fn load_program(&self, key: u64) -> Option<ProgramRecord> {
        let bytes = std::fs::read(self.prog_path(key)).ok()?;
        decode_program(key, &bytes)
    }

    /// Persist a program record atomically (same temp + rename
    /// discipline as [`SectionStore::save`]).
    pub fn save_program(&self, key: u64, rec: &ProgramRecord) -> io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tmpp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, encode_program(key, rec))?;
        std::fs::rename(&tmp, self.prog_path(key))
    }
}

/// Classify stored halt evidence against the current golden run — the
/// same rule [`classify`] applies to a live `Halt` stop. Takes the
/// golden summary as `(code, stream)` so both the live golden result
/// and a cached [`ProgramRecord`] can serve as the reference.
fn classify_halt_evidence(
    golden_code: i64,
    golden_stream: &[OutVal],
    code: i64,
    stream: &[OutVal],
) -> Outcome {
    let same_code = golden_code == code;
    let same_stream = golden_stream.len() == stream.len()
        && golden_stream.iter().zip(stream).all(|(a, b)| a.bit_eq(b));
    if same_code && same_stream {
        Outcome::Benign
    } else {
        Outcome::DataCorrupt
    }
}

/// Turn one bounded trial verdict into its stored evidence.
fn entry_of(trial: SectionTrial, golden: &casted_sim::SimResult) -> TrialEntry {
    match trial {
        SectionTrial::Finished(r) => match r.stop {
            StopReason::Detected => TrialEntry::Resolved(Outcome::Detected),
            StopReason::Exception(_) => TrialEntry::Resolved(Outcome::Exception),
            StopReason::Timeout => TrialEntry::Resolved(Outcome::Timeout),
            StopReason::Halt(code) => TrialEntry::Halted { code, stream: r.stream },
        },
        SectionTrial::Converged => {
            // Convergence proves the trial equals the golden run from
            // the convergence point on; resolve it now. (The stored
            // Benign stays valid across edits the validation admits:
            // a hit implies the golden in-span states are unchanged,
            // so the convergence re-proves itself — see
            // docs/INCREMENTAL.md.)
            debug_assert!(matches!(golden.stop, StopReason::Halt(_)));
            TrialEntry::Resolved(Outcome::Benign)
        }
        SectionTrial::Escaped => TrialEntry::Escaped(None),
    }
}

/// Run a Monte-Carlo campaign through the section cache.
///
/// Draws the identical frozen injection stream as every other engine,
/// buckets trials by section, reuses validated cached records,
/// injects only miss sections (bounded per-section runs), replays
/// escapes whole-program, and reduces the tally **in trial order** —
/// the recombined tally is byte-identical to
/// [`crate::run_campaign_engine`] on any engine with the same config
/// (the four-level gate stack enforces this; see `docs/INCREMENTAL.md`
/// for the argument). Only the default `InstructionOutput` fault
/// model is supported — the register-file model's third stream draw
/// is not part of the section key vocabulary.
pub fn run_campaign_incremental(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    store: &SectionStore,
) -> CampaignResult {
    // The section evidence vocabulary predates the recovery-capable
    // schemes: halt evidence is `(exit code, stream)` only, so a vote
    // correction, a multi-bit burst or a replay-digest plan cannot be
    // recombined from the store. Campaigns outside the vocabulary run
    // on the standard engine instead — byte-identical tally, no
    // caching — rather than silently misclassifying Corrected trials.
    if cfg.flip != crate::FlipModel::Single || cfg.replay_detect || program_has_votes(sp) {
        return crate::run_campaign_engine(sp, cfg, crate::Engine::default());
    }
    let hashes = block_validation_hashes(sp);
    let pkey = program_key(sp, &hashes);
    if let Some(prog) = store.load_program(pkey) {
        if let Some(result) = recombine_from_cache(sp, cfg, store, &hashes, &prog) {
            return result;
        }
    }
    run_campaign_cold(sp, cfg, store, &hashes, pkey)
}

/// The fully-warm fast path: with a validated [`ProgramRecord`] and
/// every consulted section record — per-escape evidence included —
/// intact, the whole campaign recombines from the store without
/// simulating a single cycle, golden run included. Any gap (a missing
/// or stale section, an escape without reusable evidence, a damaged
/// partition) returns `None` and the caller falls back to the full
/// path.
/// Whether the scheduled program contains any majority-vote
/// instruction (the TMRED transform) — see the vocabulary gate in
/// [`run_campaign_incremental`].
fn program_has_votes(sp: &ScheduledProgram) -> bool {
    sp.module
        .entry_fn()
        .insns
        .iter()
        .any(|i| i.op == casted_ir::Opcode::Vote)
}

fn recombine_from_cache(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    store: &SectionStore,
    hashes: &[(u64, u64)],
    prog: &ProgramRecord,
) -> Option<CampaignResult> {
    // A malformed partition (foreign or damaged record) is a miss.
    if prog.golden_dyn == 0
        || prog.partition.is_empty()
        || prog.partition[0].0 != 0
        || prog.partition.last().unwrap().1 != prog.golden_dyn
    {
        return None;
    }
    let golden_cycles = prog.golden_cycles;
    let golden_dyn = prog.golden_dyn;
    let max_cycles = golden_cycles.saturating_mul(cfg.timeout_factor);

    // The frozen stream: identical draw order to every other engine.
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let injections: Vec<Injection> = (0..cfg.trials)
        .map(|_| {
            let (at, bit) = crate::draw_injection(&mut rng, golden_dyn);
            Injection::single(at, bit, None)
        })
        .collect();

    let span = casted_obs::span("faults.campaign_ns");
    let nsec = prog.partition.len();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nsec];
    for (i, inj) in injections.iter().enumerate() {
        let j = prog
            .partition
            .partition_point(|&(_, hi, _)| hi < inj.at_dyn_insn)
            .min(nsec - 1);
        buckets[j].push(i);
    }

    let valid = |v: &[(u32, u64, u64)]| {
        v.iter()
            .all(|&(block, code, live)| hashes.get(block as usize) == Some(&(code, live)))
    };

    let mut stats = SectionStats { total: nsec as u64, ..SectionStats::default() };
    let mut slots: Vec<Option<Outcome>> = vec![None; cfg.trials];
    for (j, ids) in buckets.iter().enumerate() {
        if ids.is_empty() {
            continue;
        }
        let (lo, hi, start_digest) = prog.partition[j];
        let slice: Vec<Injection> = ids.iter().map(|&i| injections[i]).collect();
        let key =
            section_key(sp, max_cycles, golden_cycles, golden_dyn, lo, hi, start_digest, &slice);
        let rec = store.load(key)?;
        if rec.entries.len() != ids.len() || !valid(&rec.validation) {
            return None;
        }
        for (&i, entry) in ids.iter().zip(&rec.entries) {
            slots[i] = Some(match entry {
                TrialEntry::Resolved(o) => *o,
                TrialEntry::Halted { code, stream } => {
                    classify_halt_evidence(prog.halt_code, &prog.stream, *code, stream)
                }
                TrialEntry::Escaped(Some(ev)) if valid(&ev.validation) => match &ev.outcome {
                    EscapeOutcome::Resolved(o) => *o,
                    EscapeOutcome::Halted { code, stream } => {
                        classify_halt_evidence(prog.halt_code, &prog.stream, *code, stream)
                    }
                    EscapeOutcome::Converged => Outcome::Benign,
                },
                TrialEntry::Escaped(_) => return None,
            });
        }
        stats.hit += 1;
        stats.recombined += ids.len() as u64;
    }

    let mut tally = Tally::default();
    for o in slots {
        tally.record(o.expect("every trial classified exactly once"));
    }
    let engine_stats = EngineStats { sections: stats, ..EngineStats::default() };
    crate::record_campaign_metrics(&tally, Some(&engine_stats), span);
    Some(CampaignResult { tally, golden_cycles, golden_dyn, engine: engine_stats })
}

/// The full path: golden run, section capture, per-section cache
/// consultation, bounded injection of the misses, whole-program
/// replay of the escapes an edit invalidated — and write-back of
/// every refreshed record (escape evidence included) plus the
/// program record, so the next run can take the fast path.
fn run_campaign_cold(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    store: &SectionStore,
    hashes: &[(u64, u64)],
    pkey: u64,
) -> CampaignResult {
    let trace: GoldenTrace = golden_with_checkpoints(sp);
    assert!(
        matches!(trace.result.stop, StopReason::Halt(_)),
        "campaign target must run fault-free to completion, got {:?}",
        trace.result.stop
    );
    let StopReason::Halt(golden_code) = trace.result.stop else { unreachable!() };
    let golden_cycles = trace.result.stats.cycles;
    let golden_dyn = trace.result.stats.dyn_insns;
    let max_cycles = golden_cycles.saturating_mul(cfg.timeout_factor);

    // The frozen stream: identical draw order to every other engine.
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let injections: Vec<Injection> = (0..cfg.trials)
        .map(|_| {
            let (at, bit) = crate::draw_injection(&mut rng, golden_dyn);
            Injection::single(at, bit, None)
        })
        .collect();

    let span = casted_obs::span("faults.campaign_ns");

    let cap = capture_sections(sp, golden_dyn);
    let nsec = cap.sections.len();

    // Bucket trial indices per section. The golden run halted, so
    // golden_dyn >= 1 and no draw is degenerate (at = u64::MAX).
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nsec];
    for (i, inj) in injections.iter().enumerate() {
        debug_assert!(inj.at_dyn_insn >= 1 && inj.at_dyn_insn <= golden_dyn);
        buckets[cap.section_of(inj.at_dyn_insn)].push(i);
    }

    let validates = |rec: &SectionRecord, trials: usize| {
        rec.entries.len() == trials
            && rec.validation.iter().all(|&(block, code, live)| {
                hashes.get(block as usize) == Some(&(code, live))
            })
    };

    // Consult the store per non-empty section.
    let mut stats = SectionStats { total: nsec as u64, ..SectionStats::default() };
    let mut cached: Vec<Option<SectionRecord>> = vec![None; nsec];
    let mut keys: Vec<u64> = vec![0; nsec];
    let mut misses: Vec<usize> = Vec::new();
    for (j, ids) in buckets.iter().enumerate() {
        if ids.is_empty() {
            continue;
        }
        let sec = &cap.sections[j];
        let slice: Vec<Injection> = ids.iter().map(|&i| injections[i]).collect();
        keys[j] = section_key(
            sp, max_cycles, golden_cycles, golden_dyn, sec.lo, sec.hi, sec.start_digest, &slice,
        );
        match store.load(keys[j]) {
            Some(rec) if validates(&rec, ids.len()) => {
                stats.hit += 1;
                stats.recombined += ids.len() as u64;
                cached[j] = Some(rec);
            }
            _ => {
                stats.miss += 1;
                misses.push(j);
            }
        }
    }

    // Inject the miss sections (each runs its trials bounded to the
    // section), pooled across sections.
    let fresh = run_pool(
        misses
            .iter()
            .map(|&j| {
                let cap = &cap;
                let trace = &trace;
                let hashes: &[(u64, u64)] = hashes;
                let ids: &[usize] = &buckets[j];
                let injections: &[Injection] = &injections;
                move || {
                    let mut visited: std::collections::BTreeSet<u32> =
                        cap.sections[j].golden_blocks.iter().copied().collect();
                    let entries: Vec<TrialEntry> = ids
                        .iter()
                        .map(|&i| {
                            let (verdict, blocks) =
                                run_section_trial(sp, cap, j, injections[i], max_cycles);
                            visited.extend(blocks);
                            entry_of(verdict, &trace.result)
                        })
                        .collect();
                    let validation: Vec<(u32, u64, u64)> = visited
                        .into_iter()
                        .map(|b| {
                            let (code, live) = hashes[b as usize];
                            (b, code, live)
                        })
                        .collect();
                    (j, SectionRecord { entries, validation })
                }
            })
            .collect(),
    );
    let mut dirty: Vec<bool> = vec![false; nsec];
    for (j, rec) in fresh {
        cached[j] = Some(rec);
        dirty[j] = true;
    }

    // Recombine into per-trial outcome slots. Halts classify against
    // the *current* golden run; escapes resolve from cached evidence
    // where it still validates, and only the rest replay
    // whole-program — pooled, in trial order.
    let valid = |v: &[(u32, u64, u64)]| {
        v.iter()
            .all(|&(block, code, live)| hashes.get(block as usize) == Some(&(code, live)))
    };
    let mut slots: Vec<Option<Outcome>> = vec![None; cfg.trials];
    // (trial, section, entry index) per escape needing a live replay.
    let mut pending: Vec<(usize, usize, usize)> = Vec::new();
    for (j, ids) in buckets.iter().enumerate() {
        if ids.is_empty() {
            continue;
        }
        let rec = cached[j].as_ref().expect("every consulted section resolved");
        for (k, (&i, entry)) in ids.iter().zip(&rec.entries).enumerate() {
            slots[i] = match entry {
                TrialEntry::Resolved(o) => Some(*o),
                TrialEntry::Halted { code, stream } => Some(classify_halt_evidence(
                    golden_code,
                    &trace.result.stream,
                    *code,
                    stream,
                )),
                TrialEntry::Escaped(Some(ev)) if valid(&ev.validation) => {
                    Some(match &ev.outcome {
                        EscapeOutcome::Resolved(o) => *o,
                        EscapeOutcome::Halted { code, stream } => classify_halt_evidence(
                            golden_code,
                            &trace.result.stream,
                            *code,
                            stream,
                        ),
                        EscapeOutcome::Converged => Outcome::Benign,
                    })
                }
                TrialEntry::Escaped(_) => {
                    pending.push((i, j, k));
                    None
                }
            };
        }
    }
    pending.sort_unstable();
    let mut engine_stats = EngineStats {
        checkpoints: trace.checkpoints_taken(),
        sections: stats,
        ..EngineStats::default()
    };
    let replays = run_pool(
        pending
            .iter()
            .map(|&(i, _, _)| {
                let trace = &trace;
                let inj = injections[i];
                move || replay_trial_observed(sp, trace, inj, max_cycles)
            })
            .collect(),
    );
    for (&(i, j, k), (run, rs, blocks, converged_at)) in pending.iter().zip(replays) {
        engine_stats.skipped_insns += rs.skipped_insns;
        engine_stats.pruned_trials += rs.pruned as u64;
        let (outcome, evidence_outcome) = match run {
            TrialRun::Finished(r) => {
                let o = classify(&trace.result, &r);
                let eo = match r.stop {
                    StopReason::Detected => EscapeOutcome::Resolved(Outcome::Detected),
                    StopReason::Exception(_) => EscapeOutcome::Resolved(Outcome::Exception),
                    StopReason::Timeout => EscapeOutcome::Resolved(Outcome::Timeout),
                    StopReason::Halt(code) => EscapeOutcome::Halted { code, stream: r.stream },
                };
                (o, eo)
            }
            TrialRun::Converged => (Outcome::Benign, EscapeOutcome::Converged),
        };
        slots[i] = Some(outcome);
        // Evidence validation surface: the blocks the replay visited
        // after the fault landed, plus — for a converged verdict —
        // the golden blocks between the span exit and the convergence
        // point (the stored Benign also asserts the *golden* state
        // there; the in-span golden blocks are already in the
        // section's own validation list).
        let mut vset: BTreeSet<u32> = blocks.into_iter().collect();
        if let Some(d) = converged_at {
            let sd = cap.section_of(d);
            for sec in cap.sections.iter().take(sd + 1).skip(j + 1) {
                vset.extend(sec.golden_blocks.iter().copied());
            }
        }
        let validation: Vec<(u32, u64, u64)> = vset
            .into_iter()
            .map(|b| {
                let (code, live) = hashes[b as usize];
                (b, code, live)
            })
            .collect();
        let rec = cached[j].as_mut().expect("escape came from a resolved section");
        rec.entries[k] = TrialEntry::Escaped(Some(EscapeEvidence {
            outcome: evidence_outcome,
            validation,
        }));
        dirty[j] = true;
    }

    // Persist every re-injected or evidence-refreshed record, plus
    // the program record — best-effort: a full disk or read-only
    // cache degrades to a cold section next run, never a wrong tally.
    for (j, rec) in cached.iter().enumerate() {
        if dirty[j] {
            if let Some(rec) = rec {
                let _ = store.save(keys[j], rec);
            }
        }
    }
    let _ = store.save_program(
        pkey,
        &ProgramRecord {
            golden_cycles,
            golden_dyn,
            halt_code: golden_code,
            stream: trace.result.stream.clone(),
            partition: cap.sections.iter().map(|s| (s.lo, s.hi, s.start_digest)).collect(),
        },
    );

    let mut tally = Tally::default();
    for o in slots {
        tally.record(o.expect("every trial classified exactly once"));
    }
    crate::record_campaign_metrics(&tally, Some(&engine_stats), span);
    CampaignResult {
        tally,
        golden_cycles,
        golden_dyn,
        engine: engine_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_campaign_engine, Engine};
    use casted_ir::vliw::{Bundle, ScheduledBlock};
    use casted_ir::{Cluster, FunctionBuilder, MachineConfig, Module, Opcode, Operand};
    use std::collections::HashMap as Map;

    fn sequential(module: &Module, config: MachineConfig) -> ScheduledProgram {
        let func = module.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = Map::new();
        let mut blocks = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let mut bundles = Vec::new();
            for &iid in &block.insns {
                assignment[iid.index()] = Some(Cluster::MAIN);
                for &d in &func.insn(iid).defs {
                    home.entry(d).or_insert(Cluster::MAIN);
                }
                let mut b = Bundle::empty(config.clusters);
                b.slots[0].push(iid);
                bundles.push(b);
            }
            blocks.push(ScheduledBlock { block: bid, bundles });
        }
        ScheduledProgram {
            module: module.clone(),
            config,
            assignment,
            home,
            blocks,
        }
    }

    fn summing_module(iters: i64) -> Module {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 64, (0..64).collect());
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let base = b.imm(addr);
        let m63 = b.binop(Opcode::And, Operand::Reg(i), Operand::Imm(63));
        let sh = b.binop(Opcode::Shl, Operand::Reg(m63), Operand::Imm(3));
        let ea = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(sh));
        let v = b.load(ea, 0);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(v));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(iters));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        m
    }

    fn program() -> ScheduledProgram {
        sequential(&summing_module(200), MachineConfig::itanium2_like(2, 2))
    }

    fn tmp_store(tag: &str) -> (PathBuf, SectionStore) {
        let dir = std::env::temp_dir().join(format!(
            "casted-sections-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (dir.clone(), SectionStore::open(&dir).expect("open store"))
    }

    #[test]
    fn record_codec_round_trips() {
        let rec = SectionRecord {
            entries: vec![
                TrialEntry::Resolved(Outcome::Detected),
                TrialEntry::Halted {
                    code: -7,
                    stream: vec![OutVal::Int(-1), OutVal::Float(2.5), OutVal::Int(i64::MAX)],
                },
                TrialEntry::Escaped(None),
                TrialEntry::Escaped(Some(EscapeEvidence {
                    outcome: EscapeOutcome::Halted { code: 3, stream: vec![OutVal::Int(8)] },
                    validation: vec![(4, 5, 6)],
                })),
                TrialEntry::Escaped(Some(EscapeEvidence {
                    outcome: EscapeOutcome::Converged,
                    validation: vec![],
                })),
                TrialEntry::Escaped(Some(EscapeEvidence {
                    outcome: EscapeOutcome::Resolved(Outcome::Timeout),
                    validation: vec![(0, 0, 0), (u32::MAX, 1, 2)],
                })),
                TrialEntry::Resolved(Outcome::Benign),
            ],
            validation: vec![(0, 1, 2), (9, u64::MAX, 0x1234)],
        };
        let bytes = encode_record(42, &rec);
        assert_eq!(decode_record(42, &bytes), Some(rec.clone()));
        // Wrong key: the echo check rejects.
        assert_eq!(decode_record(43, &bytes), None);
        // Truncation and trailing garbage both reject.
        assert_eq!(decode_record(42, &bytes[..bytes.len() - 1]), None);
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(decode_record(42, &longer), None);
    }

    /// The headline claim at unit scale: cold incremental == cold full
    /// campaign on every engine, byte for byte, and a warm rerun (no
    /// edit) recombines entirely from cache to the same bytes.
    #[test]
    fn incremental_matches_all_engines_cold_and_warm() {
        let sp = program();
        let cfg = CampaignConfig { trials: 120, ..Default::default() };
        let (dir, store) = tmp_store("coldwarm");
        let cold = run_campaign_incremental(&sp, &cfg, &store);
        for engine in [Engine::Reference, Engine::Checkpointed, Engine::Batched] {
            let full = run_campaign_engine(&sp, &cfg, engine);
            assert_eq!(cold.tally, full.tally, "{} disagrees", engine.name());
            assert_eq!(cold.golden_cycles, full.golden_cycles);
            assert_eq!(cold.golden_dyn, full.golden_dyn);
        }
        assert!(cold.engine.sections.total > 1, "single-section plan is vacuous");
        assert_eq!(cold.engine.sections.hit, 0);
        assert!(cold.engine.sections.miss > 0);

        let warm = run_campaign_incremental(&sp, &cfg, &store);
        assert_eq!(warm.tally, cold.tally, "warm recombination changed the tally");
        assert_eq!(warm.engine.sections.miss, 0, "warm rerun re-injected");
        assert_eq!(warm.engine.sections.hit, cold.engine.sections.miss);
        assert_eq!(warm.engine.sections.recombined as usize, cfg.trials);
        // The fully-warm rerun takes the fast path: no golden run, no
        // checkpoints, no replays — everything from the store.
        assert_eq!(warm.engine.checkpoints, 0, "warm rerun re-simulated the golden run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Codec round-trip for the whole-program record, plus the same
    /// damage rejections as the section codec.
    #[test]
    fn program_record_codec_round_trips() {
        let rec = ProgramRecord {
            golden_cycles: 123_456,
            golden_dyn: 7890,
            halt_code: -3,
            stream: vec![OutVal::Int(1), OutVal::Float(-0.5)],
            partition: vec![(0, 100, 11), (100, 7890, u64::MAX)],
        };
        let bytes = encode_program(7, &rec);
        assert_eq!(decode_program(7, &bytes), Some(rec.clone()));
        assert_eq!(decode_program(8, &bytes), None);
        assert_eq!(decode_program(7, &bytes[..bytes.len() - 1]), None);
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(decode_program(7, &longer), None);
    }

    /// A corrupted program record degrades to the full path (golden
    /// run and all), never a wrong tally — and the full run heals it,
    /// so the run after that takes the fast path again.
    #[test]
    fn corrupted_program_record_falls_back_and_heals() {
        let sp = program();
        let cfg = CampaignConfig { trials: 80, ..Default::default() };
        let (dir, store) = tmp_store("progsab");
        let cold = run_campaign_incremental(&sp, &cfg, &store);

        let victim = std::fs::read_dir(&dir)
            .expect("read cache dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "prog"))
            .expect("cache has a program record");
        let mut bytes = std::fs::read(&victim).expect("read record");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&victim, &bytes).expect("write sabotage");

        let warm = run_campaign_incremental(&sp, &cfg, &store);
        assert_eq!(warm.tally, cold.tally, "sabotaged program record changed the tally");
        assert!(warm.engine.checkpoints > 0, "damage must force the full path");
        assert_eq!(warm.engine.sections.miss, 0, "section records were untouched");

        let healed = run_campaign_incremental(&sp, &cfg, &store);
        assert_eq!(healed.tally, cold.tally);
        assert_eq!(healed.engine.checkpoints, 0, "heal must restore the fast path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Edit the program's halt code (an epilogue-only change): the
    /// warm rerun hits every section that never visits the final
    /// block, re-injects the rest, and the recombined tally is still
    /// byte-identical to a cold full campaign *of the edited program*.
    #[test]
    fn edit_invalidates_only_touched_sections() {
        let sp = program();
        let cfg = CampaignConfig { trials: 150, ..Default::default() };
        let (dir, store) = tmp_store("edit");
        let _ = run_campaign_incremental(&sp, &cfg, &store);

        let mut m = summing_module(200);
        let func = m.entry_fn_mut();
        let halt = func
            .insns
            .iter()
            .position(|i| i.op == Opcode::Halt)
            .expect("program halts");
        func.insns[halt].imm = 7;
        let edited = sequential(&m, MachineConfig::itanium2_like(2, 2));

        let warm = run_campaign_incremental(&edited, &cfg, &store);
        assert!(warm.engine.sections.hit > 0, "epilogue edit invalidated everything");
        assert!(warm.engine.sections.miss > 0, "final-block sections must re-inject");
        let full = run_campaign_engine(&edited, &cfg, Engine::Reference);
        assert_eq!(warm.tally, full.tally, "recombined tally diverged after edit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sabotage self-test (docs/TESTING.md style): corrupt one cached
    /// record on disk — the store must detect the damage, fall back to
    /// re-injection, and still produce the exact tally. A wrong tally
    /// from a silently-accepted corrupt record is the failure mode
    /// this pins out of existence.
    #[test]
    fn corrupted_record_is_detected_and_reinjected() {
        let sp = program();
        let cfg = CampaignConfig { trials: 100, ..Default::default() };
        let (dir, store) = tmp_store("sabotage");
        let cold = run_campaign_incremental(&sp, &cfg, &store);

        // Flip one byte in the middle of one record's payload.
        let victim = std::fs::read_dir(&dir)
            .expect("read cache dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "sect"))
            .expect("cache has records");
        let mut bytes = std::fs::read(&victim).expect("read record");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).expect("write sabotage");

        let warm = run_campaign_incremental(&sp, &cfg, &store);
        assert_eq!(warm.tally, cold.tally, "sabotaged cache changed the tally");
        assert_eq!(
            warm.engine.sections.miss, 1,
            "exactly the sabotaged section must re-inject: {:?}",
            warm.engine.sections
        );
        assert_eq!(warm.engine.sections.hit + 1, cold.engine.sections.miss);

        // And the re-injection healed the store.
        let healed = run_campaign_incremental(&sp, &cfg, &store);
        assert_eq!(healed.engine.sections.miss, 0);
        assert_eq!(healed.tally, cold.tally);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Seeds and trial counts address different records: changing
    /// either misses (the injection slice is part of the key), and the
    /// recombined result still matches the full campaign.
    #[test]
    fn key_binds_the_injection_slice() {
        let sp = program();
        let (dir, store) = tmp_store("keys");
        let a = CampaignConfig { trials: 60, ..Default::default() };
        let _ = run_campaign_incremental(&sp, &a, &store);
        let b = CampaignConfig { trials: 60, seed: 99, ..Default::default() };
        let r = run_campaign_incremental(&sp, &b, &store);
        assert!(r.engine.sections.hit < r.engine.sections.total, "foreign seed fully hit");
        assert_eq!(r.tally, run_campaign_engine(&sp, &b, Engine::Reference).tally);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
