//! # casted-faults — Monte-Carlo transient-fault injection (§IV-C)
//!
//! Reproduces the paper's fault-coverage methodology: "a dynamic
//! instruction is randomly selected and one of its outputs is randomly
//! picked for injection and a random bit of the register output is
//! flipped. Errors are injected into general purpose, floating point
//! and predicate registers."
//!
//! Each Monte-Carlo trial simulates the program once with a single
//! injected bit flip and classifies the outcome into the paper's five
//! classes ([`Outcome`]): Benign, Detected, Exception, DataCorrupt,
//! Timeout. Timeouts are caught by the simulator's watchdog at a
//! multiple of the fault-free cycle count.

use casted_util::pool::run_pool;
use casted_util::Rng;

pub mod sections;

pub use sections::{run_campaign_incremental, SectionStats, SectionStore};

use casted_ir::interp::StopReason;
use casted_ir::vliw::ScheduledProgram;
use casted_sim::{
    golden_with_checkpoints_rbed, rbed_plan, replay_trial, run_batch, simulate, simulate_quiet,
    BatchStats, GoldenTrace, Injection, LaneVerdict, RbedPlan, SimOptions, SimResult, TrialRun,
};

pub use casted_sim::DEFAULT_LANE_WIDTH;
pub use casted_sim::{rbed_plan as build_rbed_plan, RbedPlan as RbedDigestPlan};

/// The paper's five outcome classes of §IV-C, plus the `Corrected`
/// class the recovery-capable TMRED scheme introduces (appended last,
/// so the historical class indices are stable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Masked: same output stream and exit code as the fault-free run.
    Benign,
    /// Caught by the error-detection checks (`br.detect` fired).
    Detected,
    /// Hardware exception (wild address, misalignment, divide by
    /// zero). "Since they can be easily caught by a custom exception
    /// handler, they are usually part of the detected errors"; shown
    /// separately for clarity, as in the paper.
    Exception,
    /// Wrong output without detection — the bad case.
    DataCorrupt,
    /// Infinite execution, detected by the simulator watchdog.
    Timeout,
    /// Repaired in place: the run finished with the golden output and
    /// exit code *and* at least one majority vote masked a corrupted
    /// copy (TMRED). Where a detect-only scheme stops the run, a
    /// correcting scheme finishes it correctly — the recovery story.
    Corrected,
}

impl Outcome {
    /// All outcomes in reporting order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Benign,
        Outcome::Detected,
        Outcome::Exception,
        Outcome::DataCorrupt,
        Outcome::Timeout,
        Outcome::Corrected,
    ];

    /// Index of this outcome in [`Outcome::ALL`] order — a direct
    /// `match` rather than a linear scan, since `Tally` hits this on
    /// every recorded trial.
    pub const fn index(self) -> usize {
        match self {
            Outcome::Benign => 0,
            Outcome::Detected => 1,
            Outcome::Exception => 2,
            Outcome::DataCorrupt => 3,
            Outcome::Timeout => 4,
            Outcome::Corrected => 5,
        }
    }

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Benign => "Benign",
            Outcome::Detected => "Detected",
            Outcome::Exception => "Exception",
            Outcome::DataCorrupt => "DataCorrupt",
            Outcome::Timeout => "Timeout",
            Outcome::Corrected => "Corrected",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Monte-Carlo trials (the paper uses 300 per benchmark).
    pub trials: usize,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// Watchdog threshold as a multiple of the fault-free cycle count.
    pub timeout_factor: u64,
    /// Strike shape: single-bit (the paper's model, the default) or a
    /// multi-bit burst.
    pub flip: FlipModel,
    /// Replay-based detection (the RBED scheme): build a chunk-digest
    /// plan from the golden run and check every trial against it.
    pub replay_detect: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 300,
            seed: 0xCA57ED,
            timeout_factor: 10,
            flip: FlipModel::Single,
            replay_detect: false,
        }
    }
}

/// Aggregated campaign outcome counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Count per outcome, indexed in [`Outcome::ALL`] order.
    pub counts: [usize; 6],
}

impl Tally {
    /// Record one outcome.
    pub fn record(&mut self, o: Outcome) {
        self.counts[o.index()] += 1;
    }

    /// Count for an outcome.
    pub fn count(&self, o: Outcome) -> usize {
        self.counts[o.index()]
    }

    /// Total trials recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction (0..=1) for an outcome.
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.count(o) as f64 / self.total() as f64
        }
    }

    /// "Coverage" in the loose sense used when discussing Fig. 9:
    /// everything except undetected corruption and timeouts (benign
    /// faults need no detection; exceptions are catchable).
    ///
    /// Clamped to `[0, 1]`: the two independently rounded divisions
    /// can sum to just over 1.0 (e.g. counts `[0,0,0,4,1]` give
    /// `1.0 - 4/5 - 1/5 ≈ -5.6e-17`), and the raw subtraction would
    /// leak a negative coverage into results CSVs.
    pub fn safe_fraction(&self) -> f64 {
        (1.0 - self.fraction(Outcome::DataCorrupt) - self.fraction(Outcome::Timeout))
            .clamp(0.0, 1.0)
    }
}

impl std::fmt::Display for Tally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for o in Outcome::ALL {
            write!(f, "{}={:5.1}% ", o.name(), 100.0 * self.fraction(o))?;
        }
        Ok(())
    }
}

/// Which campaign engine to run. All engines produce byte-identical
/// [`Tally`] results from the same seed — an invariant enforced by
/// unit tests here, a difftest oracle layer and a `scripts/ci.sh`
/// byte-compare (see docs/PERFORMANCE.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Historical engine: every trial re-simulates from cycle 0.
    Reference,
    /// Checkpoint/replay engine: golden-run snapshots, fast-forward
    /// to the injection site, convergence pruning, pooled trials.
    Checkpointed,
    /// Batched structure-of-arrays engine: N trials stepped in
    /// lockstep over the shared instruction stream from a shared
    /// checkpoint, paying the structural per-instruction work once per
    /// batch; structurally diverging lanes fall back to the
    /// checkpointed replay path (see `casted_sim::batch`).
    #[default]
    Batched,
}

impl Engine {
    /// Accepted `--engine` flag values, for error messages at every
    /// flag site.
    pub const ACCEPTED: &'static str = "reference|checkpointed|batched";

    /// Parse a `--engine` flag value (case-insensitive, so `Reference`
    /// and `BATCHED` work as well as the canonical lowercase names).
    pub fn parse(s: &str) -> Option<Engine> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Some(Engine::Reference),
            "checkpointed" => Some(Engine::Checkpointed),
            "batched" => Some(Engine::Batched),
            _ => None,
        }
    }

    /// Flag-style name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Checkpointed => "checkpointed",
            Engine::Batched => "batched",
        }
    }
}

/// Engine-side work accounting for one campaign (all zero under
/// [`Engine::Reference`]). The checkpoint fields cover snapshot
/// capture and the single-trial replay path — which the batched
/// engine also uses, for diverged lanes and singleton batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Golden-run snapshots captured (incl. the power-on state).
    pub checkpoints: u64,
    /// Golden-prefix instructions single-trial replays skipped via
    /// fast-forward.
    pub skipped_insns: u64,
    /// Single-trial replays ended early by convergence pruning.
    pub pruned_trials: u64,
    /// Batched-engine lane accounting (zeroed for the other engines).
    pub batch: BatchStats,
    /// Incremental-campaign section accounting (zeroed unless the
    /// campaign ran through [`run_campaign_incremental`]).
    pub sections: SectionStats,
}

/// Result of a whole campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Outcome counts.
    pub tally: Tally,
    /// Fault-free cycle count of the program under test.
    pub golden_cycles: u64,
    /// Fault-free dynamic instruction count.
    pub golden_dyn: u64,
    /// Checkpoint-engine accounting (zeroed for the reference engine).
    pub engine: EngineStats,
}

/// Classify one faulty run against the fault-free reference.
pub fn classify(golden: &SimResult, faulty: &SimResult) -> Outcome {
    match faulty.stop {
        StopReason::Detected => Outcome::Detected,
        StopReason::Exception(_) => Outcome::Exception,
        StopReason::Timeout => Outcome::Timeout,
        StopReason::Halt(code) => {
            let same_code = golden.stop == StopReason::Halt(code);
            let same_stream = golden.stream.len() == faulty.stream.len()
                && golden
                    .stream
                    .iter()
                    .zip(&faulty.stream)
                    .all(|(a, b)| a.bit_eq(b));
            if same_code && same_stream {
                // Golden output with vote corrections performed means
                // the scheme *repaired* the strike rather than the
                // strike being naturally masked.
                if faulty.stats.corrections > 0 {
                    Outcome::Corrected
                } else {
                    Outcome::Benign
                }
            } else {
                Outcome::DataCorrupt
            }
        }
    }
}

/// Run one injection trial from scratch. Trials stay out of the
/// `sim.*` metrics ([`casted_sim::simulate_quiet`]): a campaign runs
/// the same program hundreds of times and would drown the per-run
/// counters — and the two campaign engines' counter snapshots must
/// stay comparable.
pub fn run_trial(sp: &ScheduledProgram, golden: &SimResult, inj: Injection, max_cycles: u64) -> Outcome {
    run_trial_with(sp, golden, inj, max_cycles, None)
}

/// [`run_trial`] with an optional RBED digest plan installed.
pub fn run_trial_with(
    sp: &ScheduledProgram,
    golden: &SimResult,
    inj: Injection,
    max_cycles: u64,
    rbed: Option<&std::sync::Arc<RbedPlan>>,
) -> Outcome {
    let r = simulate_quiet(
        sp,
        &SimOptions {
            max_cycles,
            injection: Some(inj),
            rbed: rbed.cloned(),
            ..SimOptions::default()
        },
    );
    classify(golden, &r)
}

/// Run an explicit list of injections and classify each against the
/// fault-free reference — the *targeted* (non-Monte-Carlo) entry
/// point used by `casted-difftest`'s fault-probe oracle, which aims
/// injections at specific dynamic instructions (e.g. only
/// `Provenance::Original` sites) instead of sampling uniformly.
pub fn run_trials(
    sp: &ScheduledProgram,
    golden: &SimResult,
    injections: &[Injection],
    max_cycles: u64,
) -> Vec<Outcome> {
    injections
        .iter()
        .map(|&inj| run_trial(sp, golden, inj, max_cycles))
        .collect()
}

/// Draw one `(dynamic instruction, bit)` injection site — the frozen
/// per-trial draw order shared by both campaign variants (see the
/// stream-format notes on [`run_campaign`]).
///
/// ## Degenerate golden runs
///
/// When `golden_dyn_insns == 0` (an empty or immediately-trapping
/// golden run) there is no dynamic instruction to strike. Instead of
/// panicking on the empty range `1..=0`, the draw returns the
/// documented degenerate site `at = u64::MAX` — a site past every
/// dynamic instruction, so the injection never lands and the trial
/// runs fault-free (classified Benign). The `bit` draw still consumes
/// one value from the stream, keeping the RNG in a defined state for
/// subsequent trials.
/// Strike shape for the `--fault-model` flag: single-bit (the paper's
/// model) or an adjacent multi-bit burst (charge sharing between
/// neighbouring cells upsets several bits of one word; see MITRA et
/// al. style soft-error surveys). Bursts reuse the frozen `(at, bit)`
/// draws and add exactly one extra documented draw (`phase`), so the
/// `single` model reproduces the historical stream byte for byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlipModel {
    /// One flipped bit — the paper's model and the frozen default.
    #[default]
    Single,
    /// Two adjacent bits flipped.
    Burst2,
    /// Four adjacent bits flipped.
    Burst4,
}

impl FlipModel {
    /// Accepted `--fault-model` flag values, for error messages at
    /// every flag site.
    pub const ACCEPTED: &'static str = "single|burst2|burst4";

    /// Parse a `--fault-model` flag value (case-insensitive).
    pub fn parse(s: &str) -> Option<FlipModel> {
        match s.to_ascii_lowercase().as_str() {
            "single" => Some(FlipModel::Single),
            "burst2" => Some(FlipModel::Burst2),
            "burst4" => Some(FlipModel::Burst4),
            _ => None,
        }
    }

    /// Flag-style name.
    pub fn name(self) -> &'static str {
        match self {
            FlipModel::Single => "single",
            FlipModel::Burst2 => "burst2",
            FlipModel::Burst4 => "burst4",
        }
    }

    /// Burst width in bits.
    pub fn width(self) -> u8 {
        match self {
            FlipModel::Single => 1,
            FlipModel::Burst2 => 2,
            FlipModel::Burst4 => 4,
        }
    }
}

/// [`draw_injection`] plus the burst draw: for a multi-bit model one
/// extra value, `phase = gen_range(0..width)`, is drawn *after* the
/// frozen `(at, bit)` pair (and after any model-specific draw, see
/// [`run_campaign_with_model_engine`]), placing the drawn `bit` at
/// offset `phase` inside the flipped window. Under
/// [`FlipModel::Single`] no extra value is consumed, so the historical
/// stream is reproduced byte for byte.
pub fn draw_burst_phase(rng: &mut Rng, flip: FlipModel) -> u8 {
    let w = flip.width();
    if w > 1 {
        rng.gen_range(0..w as u32) as u8
    } else {
        0
    }
}

pub fn draw_injection(rng: &mut Rng, golden_dyn_insns: u64) -> (u64, u32) {
    if golden_dyn_insns == 0 {
        let bit = rng.gen_range(0..64u32);
        return (u64::MAX, bit);
    }
    let at = rng.gen_range(1..=golden_dyn_insns);
    let bit = rng.gen_range(0..64u32);
    (at, bit)
}

/// Run a full Monte-Carlo campaign over `sp`.
///
/// Each trial draws a uniformly random dynamic instruction of the run
/// and a random bit of its output register. (The paper fixes the error
/// *rate* to the original binary's dynamic length; we draw one fault
/// per trial uniformly over the tested binary's own execution — the
/// reported per-class *fractions* are directly comparable, see
/// DESIGN.md.)
///
/// ## Injection stream format (frozen)
///
/// Campaigns are bit-reproducible across platforms and toolchains:
/// the RNG is `casted_util::Rng` (xoshiro256++ seeded from
/// `cfg.seed` via SplitMix64), and each trial draws, in order,
///
/// 1. `at`  = `gen_range(1..=golden_dyn_insns)` — the dynamic
///    instruction whose output is struck, and
/// 2. `bit` = `gen_range(0..64u32)` — the flipped bit.
///
/// (The [`FaultModel::RegisterFile`] variant draws a third value,
/// `gen_range(0..total_allocated_regs)`, to pick the victim
/// register.) The `stream_format_is_frozen` unit test pins golden
/// values for this sequence; any change to the draw order, the RNG
/// algorithm or the bounded-draw mapping is a format break and must
/// be made deliberately there.
pub fn run_campaign(sp: &ScheduledProgram, cfg: &CampaignConfig) -> CampaignResult {
    run_campaign_engine(sp, cfg, Engine::default())
}

/// [`run_campaign`] on the historical engine: strictly serial, every
/// trial re-simulated from cycle 0. Kept as the cross-check oracle
/// for the checkpointed engine — same seed ⇒ byte-identical tally.
pub fn run_campaign_reference(sp: &ScheduledProgram, cfg: &CampaignConfig) -> CampaignResult {
    run_campaign_engine(sp, cfg, Engine::Reference)
}

/// [`run_campaign`] with an explicit engine choice.
pub fn run_campaign_engine(sp: &ScheduledProgram, cfg: &CampaignConfig, engine: Engine) -> CampaignResult {
    run_campaign_engine_lanes(sp, cfg, engine, DEFAULT_LANE_WIDTH)
}

/// [`run_campaign_engine`] with an explicit batch lane width — only
/// meaningful for [`Engine::Batched`] (the `bench_faults` lane-count
/// sweep drives this); the other engines ignore it. The tally is
/// independent of the width: lane grouping never changes per-trial
/// classification, only how much structural work is shared.
pub fn run_campaign_engine_lanes(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    engine: Engine,
    lane_width: usize,
) -> CampaignResult {
    let flip = cfg.flip;
    campaign_core(sp, cfg, engine, lane_width, &mut |rng, dyn_insns| {
        let (at, bit) = draw_injection(rng, dyn_insns);
        let phase = draw_burst_phase(rng, flip);
        Injection {
            at_dyn_insn: at,
            bit,
            target: None,
            width: flip.width(),
            phase,
        }
    })
}

/// [`run_campaign`] in incremental chunks, reporting the running tally
/// to `progress` every `chunk` trials — the engine behind the
/// `casted-serve` streaming-inject protocol extension.
///
/// `progress(done, tally)` is invoked after each completed chunk
/// *except the last* (the caller's final reply carries the complete
/// tally); returning `false` cancels the campaign, and the partial
/// result comes back with `completed == false`.
///
/// Two exactness properties make streaming safe to expose:
///
/// * **Prefix match** — injections are pre-drawn from the frozen
///   stream and trials are mutually independent, so the running tally
///   at `done = M` equals the tally of a whole campaign with
///   `cfg.trials = M`. A cancelled campaign's partial tally is a real
///   campaign result, not an approximation.
/// * **Engine independence** — per-trial outcomes are engine-invariant
///   (the workspace-wide byte-identical-tally contract), so the final
///   tally equals [`run_campaign_engine`] under *any* engine; chunks
///   run on the checkpointed replay path.
pub fn run_campaign_streaming(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    chunk: usize,
    progress: &mut dyn FnMut(u64, &Tally) -> bool,
) -> (CampaignResult, bool) {
    let trace = golden_with_checkpoints_rbed(sp, campaign_rbed_plan(sp, cfg));
    assert!(
        matches!(trace.result.stop, StopReason::Halt(_)),
        "campaign target must run fault-free to completion, got {:?}",
        trace.result.stop
    );
    let golden_cycles = trace.result.stats.cycles;
    let golden_dyn = trace.result.stats.dyn_insns;
    let max_cycles = golden_cycles.saturating_mul(cfg.timeout_factor);

    // Pre-draw the whole frozen stream up front (the same order every
    // engine uses), then execute it chunk by chunk.
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let injections: Vec<Injection> = (0..cfg.trials)
        .map(|_| {
            let (at, bit) = draw_injection(&mut rng, golden_dyn);
            let phase = draw_burst_phase(&mut rng, cfg.flip);
            Injection {
                at_dyn_insn: at,
                bit,
                target: None,
                width: cfg.flip.width(),
                phase,
            }
        })
        .collect();

    let span = casted_obs::span("faults.campaign_ns");
    let chunk = chunk.max(1);
    let mut tally = Tally::default();
    let mut engine_stats = EngineStats {
        checkpoints: trace.checkpoints_taken(),
        ..EngineStats::default()
    };
    let mut done: u64 = 0;
    let mut completed = true;
    for injs in injections.chunks(chunk) {
        let outcomes = run_pool(
            injs.iter()
                .map(|&inj| {
                    let trace: &GoldenTrace = &trace;
                    move || {
                        let (run, rs) = replay_trial(sp, trace, inj, max_cycles);
                        let outcome = match run {
                            TrialRun::Finished(r) => classify(&trace.result, &r),
                            TrialRun::Converged => Outcome::Benign,
                        };
                        (outcome, rs)
                    }
                })
                .collect(),
        );
        for (outcome, rs) in outcomes {
            tally.record(outcome);
            engine_stats.skipped_insns += rs.skipped_insns;
            engine_stats.pruned_trials += rs.pruned as u64;
        }
        done += injs.len() as u64;
        if done < cfg.trials as u64 && !progress(done, &tally) {
            completed = false;
            break;
        }
    }
    record_campaign_metrics(&tally, Some(&engine_stats), span);
    (
        CampaignResult {
            tally,
            golden_cycles,
            golden_dyn,
            engine: engine_stats,
        },
        completed,
    )
}

/// Build the campaign's RBED digest plan when [`CampaignConfig::
/// replay_detect`] is set (`None` otherwise): one quiet golden run for
/// the dynamic length, then [`casted_sim::rbed_plan`]'s two recording
/// passes. Never-halting targets fall through to the engines' own
/// `must run fault-free to completion` refusal.
fn campaign_rbed_plan(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
) -> Option<std::sync::Arc<RbedPlan>> {
    if !cfg.replay_detect {
        return None;
    }
    let golden = simulate_quiet(sp, &SimOptions::default());
    Some(rbed_plan(sp, golden.stats.dyn_insns))
}

/// Shared campaign driver: draw the frozen injection stream, run
/// every trial on the chosen engine, reduce the tally in trial order.
///
/// The checkpointed path **pre-draws all injections up front** (the
/// per-trial draw order through `draw` is unchanged — the frozen
/// stream contract), replays each against the golden trace, and runs
/// the replays on [`casted_util::pool::run_pool`]. Results come back
/// in input order, so the tally reduction is independent of thread
/// interleaving and the tallies of both engines are byte-identical.
fn campaign_core(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    engine: Engine,
    lane_width: usize,
    draw: &mut dyn FnMut(&mut Rng, u64) -> Injection,
) -> CampaignResult {
    match engine {
        Engine::Reference => {
            let golden = simulate(sp, &SimOptions::default());
            assert!(
                matches!(golden.stop, StopReason::Halt(_)),
                "campaign target must run fault-free to completion, got {:?}",
                golden.stop
            );
            let rbed = campaign_rbed_plan(sp, cfg);
            let max_cycles = golden.stats.cycles.saturating_mul(cfg.timeout_factor);
            let mut rng = Rng::seed_from_u64(cfg.seed);
            let mut tally = Tally::default();
            let span = casted_obs::span("faults.campaign_ns");
            for _ in 0..cfg.trials {
                let inj = draw(&mut rng, golden.stats.dyn_insns);
                tally.record(run_trial_with(sp, &golden, inj, max_cycles, rbed.as_ref()));
            }
            record_campaign_metrics(&tally, None, span);
            CampaignResult {
                tally,
                golden_cycles: golden.stats.cycles,
                golden_dyn: golden.stats.dyn_insns,
                engine: EngineStats::default(),
            }
        }
        Engine::Checkpointed => {
            let trace = golden_with_checkpoints_rbed(sp, campaign_rbed_plan(sp, cfg));
            assert!(
                matches!(trace.result.stop, StopReason::Halt(_)),
                "campaign target must run fault-free to completion, got {:?}",
                trace.result.stop
            );
            let golden_cycles = trace.result.stats.cycles;
            let golden_dyn = trace.result.stats.dyn_insns;
            let max_cycles = golden_cycles.saturating_mul(cfg.timeout_factor);

            let mut rng = Rng::seed_from_u64(cfg.seed);
            let injections: Vec<Injection> =
                (0..cfg.trials).map(|_| draw(&mut rng, golden_dyn)).collect();

            let span = casted_obs::span("faults.campaign_ns");
            let outcomes = run_pool(
                injections
                    .into_iter()
                    .map(|inj| {
                        let trace: &GoldenTrace = &trace;
                        move || {
                            let (run, rs) = replay_trial(sp, trace, inj, max_cycles);
                            let outcome = match run {
                                TrialRun::Finished(r) => classify(&trace.result, &r),
                                TrialRun::Converged => Outcome::Benign,
                            };
                            (outcome, rs)
                        }
                    })
                    .collect(),
            );

            let mut tally = Tally::default();
            let mut engine_stats = EngineStats {
                checkpoints: trace.checkpoints_taken(),
                ..EngineStats::default()
            };
            for (outcome, rs) in outcomes {
                tally.record(outcome);
                engine_stats.skipped_insns += rs.skipped_insns;
                engine_stats.pruned_trials += rs.pruned as u64;
            }
            record_campaign_metrics(&tally, Some(&engine_stats), span);
            CampaignResult {
                tally,
                golden_cycles,
                golden_dyn,
                engine: engine_stats,
            }
        }
        Engine::Batched => {
            let trace = golden_with_checkpoints_rbed(sp, campaign_rbed_plan(sp, cfg));
            assert!(
                matches!(trace.result.stop, StopReason::Halt(_)),
                "campaign target must run fault-free to completion, got {:?}",
                trace.result.stop
            );
            let golden_cycles = trace.result.stats.cycles;
            let golden_dyn = trace.result.stats.dyn_insns;
            let max_cycles = golden_cycles.saturating_mul(cfg.timeout_factor);

            let mut rng = Rng::seed_from_u64(cfg.seed);
            let injections: Vec<Injection> =
                (0..cfg.trials).map(|_| draw(&mut rng, golden_dyn)).collect();

            let span = casted_obs::span("faults.campaign_ns");

            // Sort trials by injection site and cut the sorted order
            // into lane_width batches. Each batch restores the
            // checkpoint strictly before its *earliest* site (the
            // identical rule a single-trial replay uses, via
            // `restore_index`); lanes with later sites stay virtual —
            // costing nothing — until the shared leader reaches them,
            // so one leader replay is amortized over the whole batch
            // even when its sites span several checkpoint buckets,
            // and the leaders' combined stepping telescopes to about
            // one pass over the golden run per campaign. A singleton
            // batch would be one lane of pure overhead — those trials
            // go straight to `replay_trial`.
            let lane_width = lane_width.max(2);
            let mut order: Vec<usize> = (0..injections.len()).collect();
            order.sort_by_key(|&i| (injections[i].at_dyn_insn, i));
            let mut batches: Vec<(usize, Vec<usize>)> = Vec::new();
            for chunk in order.chunks(lane_width) {
                let ckpt = trace.restore_index(injections[chunk[0]].at_dyn_insn);
                batches.push((ckpt, chunk.to_vec()));
            }

            let results = run_pool(
                batches
                    .into_iter()
                    .map(|(ckpt, ids)| {
                        let trace: &GoldenTrace = &trace;
                        let injections: &[Injection] = &injections;
                        move || {
                            let mut outcomes: Vec<(usize, Outcome)> =
                                Vec::with_capacity(ids.len());
                            let mut bstats = BatchStats::default();
                            let (mut skipped, mut pruned) = (0u64, 0u64);
                            let replay_one = |inj: Injection,
                                                  skipped: &mut u64,
                                                  pruned: &mut u64| {
                                let (run, rs) = replay_trial(sp, trace, inj, max_cycles);
                                *skipped += rs.skipped_insns;
                                *pruned += rs.pruned as u64;
                                match run {
                                    TrialRun::Finished(r) => classify(&trace.result, &r),
                                    TrialRun::Converged => Outcome::Benign,
                                }
                            };
                            if ids.len() == 1 {
                                let o = replay_one(injections[ids[0]], &mut skipped, &mut pruned);
                                outcomes.push((ids[0], o));
                            } else {
                                let injs: Vec<Injection> =
                                    ids.iter().map(|&i| injections[i]).collect();
                                let (verdicts, bs) =
                                    run_batch(sp, trace, ckpt, &injs, max_cycles);
                                bstats.accumulate(bs);
                                for (&trial, &v) in ids.iter().zip(&verdicts) {
                                    let o = match v {
                                        LaneVerdict::Halted {
                                            matches_golden: true,
                                        }
                                        | LaneVerdict::Converged => Outcome::Benign,
                                        LaneVerdict::Halted {
                                            matches_golden: false,
                                        } => Outcome::DataCorrupt,
                                        LaneVerdict::Detected => Outcome::Detected,
                                        LaneVerdict::Exception => Outcome::Exception,
                                        LaneVerdict::Timeout => Outcome::Timeout,
                                        // The batch proves nothing
                                        // about a structurally
                                        // diverged lane: replay that
                                        // one trial on the exact path.
                                        LaneVerdict::Diverged => replay_one(
                                            injections[trial],
                                            &mut skipped,
                                            &mut pruned,
                                        ),
                                    };
                                    outcomes.push((trial, o));
                                }
                            }
                            (outcomes, bstats, skipped, pruned)
                        }
                    })
                    .collect(),
            );

            // Reduce in trial order regardless of batch shapes or pool
            // interleaving: outcomes land in per-trial slots first.
            let mut slots: Vec<Option<Outcome>> = vec![None; cfg.trials];
            let mut engine_stats = EngineStats {
                checkpoints: trace.checkpoints_taken(),
                ..EngineStats::default()
            };
            for (outcomes, bs, skipped, pruned) in results {
                engine_stats.batch.accumulate(bs);
                engine_stats.skipped_insns += skipped;
                engine_stats.pruned_trials += pruned;
                for (i, o) in outcomes {
                    slots[i] = Some(o);
                }
            }
            let mut tally = Tally::default();
            for o in slots {
                tally.record(o.expect("every trial classified exactly once"));
            }
            record_campaign_metrics(&tally, Some(&engine_stats), span);
            CampaignResult {
                tally,
                golden_cycles,
                golden_dyn,
                engine: engine_stats,
            }
        }
    }
}

/// Static counter name per outcome class.
fn outcome_counter(o: Outcome) -> &'static str {
    match o {
        Outcome::Benign => "faults.outcome.benign",
        Outcome::Detected => "faults.outcome.detected",
        Outcome::Exception => "faults.outcome.exception",
        Outcome::DataCorrupt => "faults.outcome.data_corrupt",
        Outcome::Timeout => "faults.outcome.timeout",
        Outcome::Corrected => "faults.outcome.corrected",
    }
}

/// Flush one finished campaign into the global metrics registry:
/// outcome tallies and trial count as deterministic counters, the
/// campaign wall-time and trial throughput as timing metrics (span
/// histogram + `faults.trials_per_sec` gauge, both excluded from the
/// counter-only snapshot). The checkpointed and batched engines also
/// flush their `faults.checkpoint.*` / `faults.batch.*` work counters
/// — and incremental campaigns their `faults.sections.*` cache
/// counters — the only counter-snapshot keys on which the engines are
/// allowed to differ (`scripts/ci.sh` strips exactly these before its
/// byte-compare).
pub(crate) fn record_campaign_metrics(
    tally: &Tally,
    engine: Option<&EngineStats>,
    span: casted_obs::Span,
) {
    if !casted_obs::enabled() {
        return;
    }
    let trials = tally.total() as u64;
    casted_obs::add("faults.trials", trials);
    for o in Outcome::ALL {
        casted_obs::add(outcome_counter(o), tally.count(o) as u64);
    }
    if let Some(es) = engine {
        casted_obs::add("faults.checkpoint.taken", es.checkpoints);
        casted_obs::add("faults.checkpoint.skipped_insns", es.skipped_insns);
        casted_obs::add("faults.checkpoint.pruned", es.pruned_trials);
        if es.batch.lanes > 0 {
            casted_obs::add("faults.batch.lanes", es.batch.lanes);
            casted_obs::add("faults.batch.bundles", es.batch.bundles_stepped);
            casted_obs::add("faults.batch.lane_steps", es.batch.lane_insn_steps);
            casted_obs::add("faults.batch.divergences", es.batch.divergences);
            casted_obs::add("faults.batch.skipped_insns", es.batch.skipped_insns);
            casted_obs::add("faults.batch.retired.converged", es.batch.retired_converged);
            casted_obs::add("faults.batch.retired.finished", es.batch.retired_finished);
            casted_obs::add("faults.batch.retired.detected", es.batch.retired_detected);
            casted_obs::add("faults.batch.retired.exception", es.batch.retired_exception);
            casted_obs::add("faults.batch.retired.timeout", es.batch.retired_timeout);
        }
        if es.sections.total > 0 {
            casted_obs::add("faults.sections.total", es.sections.total);
            casted_obs::add("faults.sections.hit", es.sections.hit);
            casted_obs::add("faults.sections.miss", es.sections.miss);
            casted_obs::add("faults.sections.recombined", es.sections.recombined);
        }
    }
    let ns = span.elapsed_ns();
    if ns > 0 {
        casted_obs::gauge_set(
            "faults.trials_per_sec",
            trials.saturating_mul(1_000_000_000) / ns,
        );
    }
    // Dropping the span records the campaign wall-time histogram.
}

#[cfg(test)]
mod tests {
    use super::*;
    use casted_ir::vliw::{Bundle, ScheduledBlock};
    use casted_ir::{Cluster, FunctionBuilder, MachineConfig, Module, Opcode, Operand};
    use std::collections::HashMap;

    fn sequential(module: &Module) -> ScheduledProgram {
        let config = MachineConfig::perfect_memory(1, 1);
        let func = module.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = HashMap::new();
        let mut blocks = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let mut bundles = Vec::new();
            for &iid in &block.insns {
                assignment[iid.index()] = Some(Cluster::MAIN);
                for &d in &func.insn(iid).defs {
                    home.entry(d).or_insert(Cluster::MAIN);
                }
                let mut b = Bundle::empty(config.clusters);
                b.slots[0].push(iid);
                bundles.push(b);
            }
            blocks.push(ScheduledBlock { block: bid, bundles });
        }
        ScheduledProgram {
            module: module.clone(),
            config,
            assignment,
            home,
            blocks,
        }
    }

    /// Unprotected program summing memory values and printing the sum.
    fn unprotected() -> ScheduledProgram {
        let mut m = Module::new("t");
        let (_, addr) = m.add_global("g", casted_ir::func::GlobalClass::Int, 64, (0..64).collect());
        let mut b = FunctionBuilder::new("main");
        let body = b.new_block("body");
        let done = b.new_block("done");
        let acc = b.imm(0);
        let i = b.imm(0);
        b.br(body);
        b.switch_to(body);
        let base = b.imm(addr);
        let sh = b.binop(Opcode::Shl, Operand::Reg(i), Operand::Imm(3));
        let ea = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(sh));
        let v = b.load(ea, 0);
        let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(v));
        b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
        let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
        b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
        let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(64));
        b.br_cond(p, body, done);
        b.switch_to(done);
        b.out(Operand::Reg(acc));
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        sequential(&m)
    }

    /// The injection stream format is frozen (see [`run_campaign`]
    /// docs): for a given seed and golden dynamic length, the sequence
    /// of `(dynamic instruction, bit)` injection sites is identical on
    /// every platform and toolchain, byte for byte. These golden
    /// values pin the format — seed `0xCA57ED` (the default), a
    /// 1000-instruction run, first eight trials. If this test breaks,
    /// campaign results are no longer comparable with previously
    /// published runs; bump the documented stream format instead of
    /// silently updating the constants.
    #[test]
    fn stream_format_is_frozen() {
        let mut rng = Rng::seed_from_u64(CampaignConfig::default().seed);
        let got: Vec<(u64, u32)> = (0..8).map(|_| draw_injection(&mut rng, 1000)).collect();
        assert_eq!(
            got,
            [
                (11, 13),
                (846, 38),
                (441, 63),
                (884, 48),
                (225, 38),
                (450, 15),
                (597, 38),
                (32, 45),
            ]
        );
        // Burst extension: `Single` consumes no extra value — the
        // historical stream above is reproduced byte for byte — while
        // a multi-bit model draws exactly one extra `phase` value per
        // trial, *after* the frozen `(at, bit)` pair.
        let mut single = Rng::seed_from_u64(CampaignConfig::default().seed);
        for want in &got {
            let pair = draw_injection(&mut single, 1000);
            assert_eq!(&pair, want, "Single must not perturb the stream");
            assert_eq!(draw_burst_phase(&mut single, FlipModel::Single), 0);
        }
        // Pinned golden values for the burst2 stream: interleaving the
        // phase draw shifts every subsequent (at, bit) pair.
        let mut burst = Rng::seed_from_u64(CampaignConfig::default().seed);
        let got2: Vec<(u64, u32, u8)> = (0..4)
            .map(|_| {
                let (at, bit) = draw_injection(&mut burst, 1000);
                (at, bit, draw_burst_phase(&mut burst, FlipModel::Burst2))
            })
            .collect();
        assert_eq!(
            got2,
            [(11, 13, 1), (606, 28, 1), (884, 48, 0), (594, 28, 0)]
        );
        for (_, _, phase) in &got2 {
            assert!(*phase < FlipModel::Burst2.width() as u8);
        }
    }

    /// Streaming campaigns must be *exact*: the final result equals
    /// every engine's non-streaming result, and each intermediate
    /// tally equals a whole campaign truncated at that trial count
    /// (the frozen injection stream makes prefixes real campaigns).
    #[test]
    fn streaming_campaign_prefixes_match_whole_campaigns() {
        let sp = unprotected();
        let cfg = CampaignConfig {
            trials: 40,
            seed: 7,
            timeout_factor: 10,
            ..CampaignConfig::default()
        };
        let mut updates: Vec<(u64, Tally)> = Vec::new();
        let (res, completed) = run_campaign_streaming(&sp, &cfg, 16, &mut |done, t| {
            updates.push((done, t.clone()));
            true
        });
        assert!(completed);
        assert_eq!(res.tally.total(), 40);
        for engine in [Engine::Reference, Engine::Checkpointed, Engine::Batched] {
            let full = run_campaign_engine(&sp, &cfg, engine);
            assert_eq!(res.tally, full.tally, "streaming vs {engine:?}");
            assert_eq!(res.golden_cycles, full.golden_cycles);
            assert_eq!(res.golden_dyn, full.golden_dyn);
        }
        // Progress fires at every chunk boundary short of the total
        // (the final tally travels in the caller's terminal reply).
        assert_eq!(
            updates.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![16, 32]
        );
        for (done, t) in &updates {
            let prefix_cfg = CampaignConfig {
                trials: *done as usize,
                ..cfg.clone()
            };
            let prefix = run_campaign(&sp, &prefix_cfg);
            assert_eq!(t, &prefix.tally, "prefix mismatch at {done} trials");
        }
    }

    /// Cancelling mid-campaign yields exactly the prefix campaign —
    /// the partial tally is a real result, not an approximation.
    #[test]
    fn streaming_campaign_cancel_returns_exact_prefix() {
        let sp = unprotected();
        let cfg = CampaignConfig {
            trials: 40,
            seed: 9,
            timeout_factor: 10,
            ..CampaignConfig::default()
        };
        let (partial, completed) =
            run_campaign_streaming(&sp, &cfg, 10, &mut |done, _| done < 20);
        assert!(!completed);
        assert_eq!(partial.tally.total(), 20);
        let prefix = run_campaign(
            &sp,
            &CampaignConfig {
                trials: 20,
                ..cfg
            },
        );
        assert_eq!(partial.tally, prefix.tally);
    }

    /// Regression: `draw_injection` used to panic on the empty range
    /// `gen_range(1..=0)` when the golden run retired zero dynamic
    /// instructions (empty or immediately-trapping program). The guard
    /// returns the documented degenerate site instead: `at =
    /// u64::MAX` (past every dynamic instruction, so the injection
    /// never lands) with the bit still drawn from the stream, leaving
    /// the RNG in a defined state for subsequent trials.
    #[test]
    fn draw_injection_with_empty_golden_run_does_not_panic() {
        let mut rng = Rng::seed_from_u64(0xCA57ED);
        let (at, bit) = draw_injection(&mut rng, 0);
        assert_eq!(at, u64::MAX, "degenerate site must be past every insn");
        assert!(bit < 64);
        // The stream stays usable and deterministic after the
        // degenerate draw.
        let (at2, bit2) = draw_injection(&mut rng, 1000);
        assert!((1..=1000).contains(&at2) && bit2 < 64);
        let mut replay = Rng::seed_from_u64(0xCA57ED);
        let a = draw_injection(&mut replay, 0);
        let b = draw_injection(&mut replay, 1000);
        assert_eq!((a, b), ((at, bit), (at2, bit2)));
    }

    /// The degenerate site is inert end to end: injected into a real
    /// program, it never fires and the trial classifies Benign.
    #[test]
    fn degenerate_injection_is_benign() {
        let sp = unprotected();
        let golden = simulate(&sp, &SimOptions::default());
        let outcome = run_trial(
            &sp,
            &golden,
            Injection::single(u64::MAX, 5, None),
            golden.stats.cycles * 10,
        );
        assert_eq!(outcome, Outcome::Benign);
    }

    /// Same-seed campaigns must agree between campaign variants too:
    /// the `InstructionOutput` model inside `run_campaign_with_model`
    /// delegates, so its draw sequence is the same stream.
    #[test]
    fn stream_is_platform_stable_across_dyn_lengths() {
        // The (at, bit) pair for trial 0 must depend only on the seed
        // and the golden dynamic length — two different lengths give
        // reproducible (but different) sites from the same raw stream.
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let (at_a, bit_a) = draw_injection(&mut a, 100);
        let (at_b, bit_b) = draw_injection(&mut b, 100);
        assert_eq!((at_a, bit_a), (at_b, bit_b));
        assert!(at_a >= 1 && at_a <= 100 && bit_a < 64);
    }

    #[test]
    fn campaign_is_deterministic() {
        let sp = unprotected();
        let cfg = CampaignConfig {
            trials: 50,
            ..Default::default()
        };
        let a = run_campaign(&sp, &cfg);
        let b = run_campaign(&sp, &cfg);
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn different_seeds_differ() {
        let sp = unprotected();
        let a = run_campaign(
            &sp,
            &CampaignConfig {
                trials: 60,
                seed: 1,
                ..Default::default()
            },
        );
        let b = run_campaign(
            &sp,
            &CampaignConfig {
                trials: 60,
                seed: 2,
                ..Default::default()
            },
        );
        // Overwhelmingly likely to differ in at least one class.
        assert_ne!(a.tally, b.tally);
    }

    #[test]
    fn unprotected_program_never_detects() {
        let sp = unprotected();
        let r = run_campaign(
            &sp,
            &CampaignConfig {
                trials: 80,
                ..Default::default()
            },
        );
        assert_eq!(r.tally.count(Outcome::Detected), 0);
        // And some faults must corrupt data or raise exceptions.
        assert!(
            r.tally.count(Outcome::DataCorrupt) + r.tally.count(Outcome::Exception) > 0,
            "all faults benign? {:?}",
            r.tally
        );
        assert_eq!(r.tally.total(), 80);
    }

    #[test]
    fn tally_fractions_sum_to_one() {
        let sp = unprotected();
        let r = run_campaign(
            &sp,
            &CampaignConfig {
                trials: 40,
                ..Default::default()
            },
        );
        let sum: f64 = Outcome::ALL.iter().map(|&o| r.tally.fraction(o)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    /// The tentpole equivalence oracle at unit scale: same seed, same
    /// trials ⇒ the checkpointed engine's tally is byte-identical to
    /// the reference engine's, and the checkpoint engine actually did
    /// engine work (snapshots + fast-forward).
    #[test]
    fn checkpointed_and_reference_engines_agree() {
        let sp = unprotected();
        let cfg = CampaignConfig {
            trials: 80,
            ..Default::default()
        };
        let reference = run_campaign_reference(&sp, &cfg);
        let checkpointed = run_campaign_engine(&sp, &cfg, Engine::Checkpointed);
        assert_eq!(reference.tally, checkpointed.tally, "engines diverged");
        assert_eq!(reference.golden_cycles, checkpointed.golden_cycles);
        assert_eq!(reference.golden_dyn, checkpointed.golden_dyn);
        assert_eq!(reference.engine, EngineStats::default());
        assert!(checkpointed.engine.checkpoints > 1, "no snapshots captured");
        assert!(
            checkpointed.engine.skipped_insns > 0,
            "fast-forward never skipped a prefix"
        );
    }

    /// The batched engine joins the same equivalence class: same seed,
    /// same trials ⇒ byte-identical tally to the reference engine —
    /// and the batches genuinely ran lanes (the speedup is real work
    /// sharing, not everything falling back to single-trial replay).
    #[test]
    fn batched_engine_agrees_with_reference() {
        let sp = unprotected();
        let cfg = CampaignConfig {
            trials: 80,
            ..Default::default()
        };
        let reference = run_campaign_reference(&sp, &cfg);
        let batched = run_campaign_engine(&sp, &cfg, Engine::Batched);
        assert_eq!(reference.tally, batched.tally, "batched engine diverged");
        assert_eq!(reference.golden_cycles, batched.golden_cycles);
        assert_eq!(reference.golden_dyn, batched.golden_dyn);
        assert!(batched.engine.batch.lanes > 0, "no lanes ever batched");
        assert!(
            batched.engine.batch.lanes > batched.engine.batch.divergences,
            "every lane diverged — the batch engine shared no work: {:?}",
            batched.engine.batch
        );
        // And the default entry point is the batched engine.
        let default = run_campaign(&sp, &cfg);
        assert_eq!(default.tally, batched.tally);
        assert_eq!(default.engine, batched.engine);
    }

    /// The tally (and therefore every published number) is independent
    /// of the lane width — width only changes how much structural work
    /// is shared, never per-trial classification.
    #[test]
    fn batched_tally_is_lane_width_independent() {
        let sp = unprotected();
        let cfg = CampaignConfig {
            trials: 60,
            ..Default::default()
        };
        let base = run_campaign_engine_lanes(&sp, &cfg, Engine::Batched, 2);
        for width in [4usize, 16, 64] {
            let r = run_campaign_engine_lanes(&sp, &cfg, Engine::Batched, width);
            assert_eq!(base.tally, r.tally, "lane width {width} changed the tally");
        }
    }

    /// Regression (satellite): one-dynamic-instruction programs (`halt`
    /// alone) must campaign cleanly under all three engines and agree:
    /// the lone instruction has no output register, every strike
    /// slides off the end, and all trials are Benign.
    #[test]
    fn one_insn_program_campaigns_agree_across_engines() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        b.halt_imm(0);
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let sp = sequential(&m);
        let cfg = CampaignConfig {
            trials: 25,
            ..Default::default()
        };
        let reference = run_campaign_reference(&sp, &cfg);
        assert_eq!(reference.golden_dyn, 1);
        assert_eq!(reference.tally.count(Outcome::Benign), 25);
        for engine in [Engine::Checkpointed, Engine::Batched] {
            let r = run_campaign_engine(&sp, &cfg, engine);
            assert_eq!(r.tally, reference.tally, "{} diverged", engine.name());
        }
    }

    /// Regression (satellite): zero-dynamic-instruction programs (an
    /// empty entry block that falls through) cannot be campaign
    /// targets — the golden run never halts — and all three engines
    /// must refuse identically instead of panicking deep inside
    /// checkpoint or batch bookkeeping.
    #[test]
    fn zero_insn_program_is_refused_identically_by_all_engines() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main");
        let _unreachable = b.new_block("dead");
        let id = m.add_function(b.finish());
        m.entry = Some(id);
        let sp = sequential(&m);
        let cfg = CampaignConfig {
            trials: 5,
            ..Default::default()
        };
        for engine in [Engine::Reference, Engine::Checkpointed, Engine::Batched] {
            let sp = sp.clone();
            let cfg = cfg.clone();
            let err = std::panic::catch_unwind(move || run_campaign_engine(&sp, &cfg, engine))
                .expect_err("engine accepted a never-halting golden run");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("must run fault-free to completion"),
                "{}: unexpected panic {msg:?}",
                engine.name()
            );
        }
    }

    /// Convergence-pruned trials classify identically to full-run
    /// classification: a campaign that demonstrably pruned (the
    /// benign-heavy unprotected loop guarantees re-convergent faults)
    /// still matches the reference tally class for class — pruning
    /// only ever short-circuits trials the full run calls Benign.
    #[test]
    fn pruned_trials_classify_identically_to_full_runs() {
        let sp = unprotected();
        let cfg = CampaignConfig {
            trials: 120,
            ..Default::default()
        };
        let checkpointed = run_campaign_engine(&sp, &cfg, Engine::Checkpointed);
        assert!(
            checkpointed.engine.pruned_trials > 0,
            "campaign never pruned — the test is vacuous: {:?}",
            checkpointed.engine
        );
        let reference = run_campaign_reference(&sp, &cfg);
        assert_eq!(reference.tally, checkpointed.tally);
        // Pruned trials are a subset of the Benign class.
        assert!(
            checkpointed.engine.pruned_trials <= checkpointed.tally.count(Outcome::Benign) as u64
        );
    }

    #[test]
    fn engine_parse_round_trips() {
        for e in [Engine::Reference, Engine::Checkpointed, Engine::Batched] {
            assert_eq!(Engine::parse(e.name()), Some(e));
            // Every canonical name appears in the advertised flag help.
            assert!(Engine::ACCEPTED.contains(e.name()));
        }
        assert_eq!(Engine::parse("warp-drive"), None);
        assert_eq!(Engine::default(), Engine::Batched);
    }

    /// Regression (satellite): `parse` used to silently reject case
    /// variants like `Reference`, turning a shell-quoting slip into a
    /// fallback to the default engine.
    #[test]
    fn engine_parse_is_case_insensitive() {
        assert_eq!(Engine::parse("Reference"), Some(Engine::Reference));
        assert_eq!(Engine::parse("CHECKPOINTED"), Some(Engine::Checkpointed));
        assert_eq!(Engine::parse("Batched"), Some(Engine::Batched));
        assert_eq!(Engine::parse("bAtChEd"), Some(Engine::Batched));
        assert_eq!(Engine::parse(""), None);
    }

    /// Regression (satellite): `safe_fraction` subtracted two
    /// independently rounded divisions from 1.0; when the non-safe
    /// classes account for *all* trials the sum can exceed 1.0 by an
    /// ulp and coverage went negative (counts [0,0,0,4,1]:
    /// `1.0 - 4/5 - 1/5 = -5.55e-17`), leaking `-0.0000` into CSVs.
    #[test]
    fn safe_fraction_never_leaves_unit_interval() {
        let ulp_overshoot = Tally {
            counts: [0, 0, 0, 4, 1, 0],
        };
        // The raw subtraction really does overshoot — this pins the
        // arithmetic the clamp is protecting against.
        let raw = 1.0
            - ulp_overshoot.fraction(Outcome::DataCorrupt)
            - ulp_overshoot.fraction(Outcome::Timeout);
        assert!(raw < 0.0, "expected the ulp overshoot, got {raw:e}");
        assert_eq!(ulp_overshoot.safe_fraction(), 0.0);
        assert!(ulp_overshoot.safe_fraction().is_sign_positive());
        // Sweep small tallies: always within [0, 1].
        for dc in 0..12usize {
            for to in 0..12usize {
                for benign in 0..3usize {
                    let t = Tally {
                        counts: [benign, 0, 0, dc, to, 0],
                    };
                    let f = t.safe_fraction();
                    assert!((0.0..=1.0).contains(&f), "{t:?} -> {f}");
                }
            }
        }
    }

    #[test]
    fn classify_benign_vs_corrupt() {
        let sp = unprotected();
        let golden = simulate(&sp, &SimOptions::default());
        // Same result is benign.
        assert_eq!(classify(&golden, &golden), Outcome::Benign);
        // A run with altered stream is corrupt.
        let mut faulty = golden.clone();
        faulty.stream[0] = casted_ir::interp::OutVal::Int(-1);
        assert_eq!(classify(&golden, &faulty), Outcome::DataCorrupt);
        // Different exit code is corrupt even with same stream.
        let mut faulty2 = golden.clone();
        faulty2.stop = StopReason::Halt(99);
        assert_eq!(classify(&golden, &faulty2), Outcome::DataCorrupt);
    }
}

/// Which hardware structure the fault strikes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultModel {
    /// The paper's model (§IV-C): flip a bit of a dynamic
    /// instruction's output register right after writeback.
    #[default]
    InstructionOutput,
    /// Extension: flip a bit of a uniformly random *architectural
    /// register* at a random point in time — a register-file strike.
    /// Dormant values (long-lived, rarely rewritten) are exposed much
    /// longer under this model, so coverage differs.
    RegisterFile,
}

/// Run a campaign under a chosen [`FaultModel`].
pub fn run_campaign_with_model(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    model: FaultModel,
) -> CampaignResult {
    run_campaign_with_model_engine(sp, cfg, model, Engine::default())
}

/// [`run_campaign_with_model`] with an explicit engine choice.
pub fn run_campaign_with_model_engine(
    sp: &ScheduledProgram,
    cfg: &CampaignConfig,
    model: FaultModel,
    engine: Engine,
) -> CampaignResult {
    if model == FaultModel::InstructionOutput {
        return run_campaign_engine(sp, cfg, engine);
    }
    use casted_ir::{Reg, RegClass};
    // Uniform over all allocated registers of all classes; the counts
    // are a property of the function, hoisted out of the trial loop.
    let func = sp.module.entry_fn();
    let counts = [
        func.reg_count(RegClass::Gp),
        func.reg_count(RegClass::Fp),
        func.reg_count(RegClass::Pr),
    ];
    let total: u32 = counts.iter().sum();
    let flip = cfg.flip;
    campaign_core(sp, cfg, engine, DEFAULT_LANE_WIDTH, &mut |rng, dyn_insns| {
        let (at, bit) = draw_injection(rng, dyn_insns);
        let mut pick = rng.gen_range(0..total.max(1));
        let target = if pick < counts[0] {
            Reg::gp(pick)
        } else if {
            pick -= counts[0];
            pick < counts[1]
        } {
            Reg::fp(pick)
        } else {
            pick -= counts[1];
            Reg::pr(pick)
        };
        let phase = draw_burst_phase(rng, flip);
        Injection {
            at_dyn_insn: at,
            bit,
            target: Some(target),
            width: flip.width(),
            phase,
        }
    })
}

#[cfg(test)]
mod model_tests {
    use super::*;
    use casted_ir::testgen::{random_module, GenOptions};
    use casted_ir::vliw::{Bundle, ScheduledBlock};
    use casted_ir::{Cluster, MachineConfig};
    use std::collections::HashMap;

    fn sequential_of(m: &casted_ir::Module) -> ScheduledProgram {
        let config = MachineConfig::perfect_memory(1, 1);
        let func = m.entry_fn();
        let mut assignment = vec![None; func.insns.len()];
        let mut home = HashMap::new();
        let mut blocks = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let mut bundles = Vec::new();
            for &iid in &block.insns {
                assignment[iid.index()] = Some(Cluster::MAIN);
                for &d in &func.insn(iid).defs {
                    home.entry(d).or_insert(Cluster::MAIN);
                }
                let mut b = Bundle::empty(config.clusters);
                b.slots[0].push(iid);
                bundles.push(b);
            }
            blocks.push(ScheduledBlock { block: bid, bundles });
        }
        ScheduledProgram {
            module: m.clone(),
            config,
            assignment,
            home,
            blocks,
        }
    }

    #[test]
    fn register_file_model_runs_and_is_deterministic() {
        let m = random_module(5, &GenOptions::default());
        let sp = sequential_of(&m);
        let cfg = CampaignConfig {
            trials: 30,
            ..Default::default()
        };
        let a = run_campaign_with_model(&sp, &cfg, FaultModel::RegisterFile);
        let b = run_campaign_with_model(&sp, &cfg, FaultModel::RegisterFile);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.tally.total(), 30);
    }

    #[test]
    fn output_model_delegates_to_default_campaign() {
        let m = random_module(9, &GenOptions::default());
        let sp = sequential_of(&m);
        let cfg = CampaignConfig {
            trials: 20,
            ..Default::default()
        };
        let a = run_campaign_with_model(&sp, &cfg, FaultModel::InstructionOutput);
        let b = run_campaign(&sp, &cfg);
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn run_trials_matches_individual_trials() {
        let m = random_module(21, &GenOptions::default());
        let sp = sequential_of(&m);
        let golden = casted_sim::simulate(&sp, &casted_sim::SimOptions::default());
        let max_cycles = golden.stats.cycles * 10;
        let injections: Vec<Injection> = (1..6)
            .map(|k| Injection::single(k * 7, (k % 64) as u32, None))
            .collect();
        let batch = run_trials(&sp, &golden, &injections, max_cycles);
        assert_eq!(batch.len(), injections.len());
        for (i, &inj) in injections.iter().enumerate() {
            assert_eq!(batch[i], run_trial(&sp, &golden, inj, max_cycles));
        }
    }

    #[test]
    fn register_file_model_engines_agree() {
        let m = random_module(5, &GenOptions::default());
        let sp = sequential_of(&m);
        let cfg = CampaignConfig {
            trials: 40,
            ..Default::default()
        };
        let a = run_campaign_with_model_engine(&sp, &cfg, FaultModel::RegisterFile, Engine::Reference);
        let b =
            run_campaign_with_model_engine(&sp, &cfg, FaultModel::RegisterFile, Engine::Checkpointed);
        assert_eq!(a.tally, b.tally, "register-file model engines diverged");
    }

    #[test]
    fn models_differ_in_distribution() {
        // Register-file strikes hit dormant/dead registers far more
        // often, so the benign fraction should generally be higher.
        let m = random_module(12, &GenOptions::default());
        let sp = sequential_of(&m);
        let cfg = CampaignConfig {
            trials: 120,
            ..Default::default()
        };
        let out = run_campaign_with_model(&sp, &cfg, FaultModel::InstructionOutput);
        let rf = run_campaign_with_model(&sp, &cfg, FaultModel::RegisterFile);
        assert_ne!(out.tally, rf.tally, "models should produce different tallies");
    }
}
