//! Property test for the compositional section-cache campaign
//! (`casted_faults::sections`): over random programs and random
//! edits, a recombined incremental tally is **byte-identical** to a
//! cold full campaign of the *current* program — on all three
//! engines, whatever mix of cached and fresh sections the store
//! supplied. This is the unit/property level of the four-level gate
//! stack (docs/INCREMENTAL.md); the integration, difftest and ci.sh
//! levels enforce the same bytes at larger scales.

use casted_faults::{
    run_campaign_engine, run_campaign_incremental, CampaignConfig, Engine, SectionStore,
};
use casted_ir::interp::StopReason;
use casted_ir::testgen::{random_module, GenOptions};
use casted_ir::vliw::{Bundle, ScheduledBlock, ScheduledProgram};
use casted_ir::{Cluster, MachineConfig, Module, Opcode};
use casted_sim::{simulate_quiet, SimOptions};
use std::path::PathBuf;

fn sequential(m: &Module, config: MachineConfig) -> ScheduledProgram {
    let func = m.entry_fn();
    let mut assignment = vec![None; func.insns.len()];
    let mut home = std::collections::HashMap::new();
    let mut blocks = Vec::new();
    for (bid, block) in func.iter_blocks() {
        let mut bundles = Vec::new();
        for &iid in &block.insns {
            assignment[iid.index()] = Some(Cluster::MAIN);
            for &d in &func.insn(iid).defs {
                home.entry(d).or_insert(Cluster::MAIN);
            }
            let mut b = Bundle::empty(config.clusters);
            b.slots[0].push(iid);
            bundles.push(b);
        }
        blocks.push(ScheduledBlock { block: bid, bundles });
    }
    ScheduledProgram {
        module: m.clone(),
        config,
        assignment,
        home,
        blocks,
    }
}

fn halts(sp: &ScheduledProgram) -> bool {
    matches!(
        simulate_quiet(sp, &SimOptions::default()).stop,
        StopReason::Halt(_)
    )
}

fn fresh_store(tag: &str) -> (PathBuf, SectionStore) {
    let dir = std::env::temp_dir().join(format!("casted-prop-sections-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), SectionStore::open(&dir).expect("open store"))
}

/// Assert the incremental campaign's tally equals a cold full
/// campaign on every engine. `seed_token` names the failing case the
/// way difftest REPLAY tokens do.
fn assert_exact(sp: &ScheduledProgram, cfg: &CampaignConfig, store: &SectionStore, seed_token: &str) {
    let inc = run_campaign_incremental(sp, cfg, store);
    for engine in [Engine::Reference, Engine::Checkpointed, Engine::Batched] {
        let full = run_campaign_engine(sp, cfg, engine);
        assert_eq!(
            inc.tally,
            full.tally,
            "[{seed_token}] incremental tally != {} engine (sections {:?})",
            engine.name(),
            inc.engine.sections
        );
        assert_eq!(inc.golden_cycles, full.golden_cycles, "[{seed_token}]");
        assert_eq!(inc.golden_dyn, full.golden_dyn, "[{seed_token}]");
    }
}

/// Random programs: cold incremental equals every engine, a warm
/// rerun (the zero-changed-section "no-op edit": identical program,
/// fresh process state) fully hits and still equals every engine.
#[test]
fn random_programs_cold_and_noop_edit_are_exact() {
    let opts = GenOptions::default();
    for seed in [3u64, 11, 27, 42, 77] {
        let m = random_module(seed, &opts);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        if !halts(&sp) {
            continue;
        }
        let cfg = CampaignConfig { trials: 60, seed: 0xCA57ED ^ seed, ..Default::default() };
        let (dir, store) = fresh_store(&format!("noop-{seed}"));
        assert_exact(&sp, &cfg, &store, &format!("gen:{seed}:cold"));

        // No-op edit: rebuild the identical schedule from a clone of
        // the module — every section must hit and the bytes must not
        // move.
        let rebuilt = sequential(&m.clone(), MachineConfig::itanium2_like(2, 2));
        let warm = run_campaign_incremental(&rebuilt, &cfg, &store);
        assert_eq!(warm.engine.sections.miss, 0, "[gen:{seed}:noop] re-injected");
        assert_eq!(warm.engine.sections.recombined as usize, cfg.trials);
        assert_exact(&rebuilt, &cfg, &store, &format!("gen:{seed}:noop"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Random edits: flip immediates of randomly chosen instructions —
/// including instructions of the *entry* block (which sits on the
/// first section boundary and invalidates the start digest of every
/// later section) and the halt (final-section boundary). Whatever the
/// edit does to the trace, the warm recombined tally must equal a
/// cold campaign of the edited program.
#[test]
fn random_edits_recombine_exactly() {
    let opts = GenOptions::default();
    for seed in [5u64, 19, 33] {
        let m = random_module(seed, &opts);
        let sp = sequential(&m, MachineConfig::itanium2_like(2, 2));
        if !halts(&sp) {
            continue;
        }
        let cfg = CampaignConfig { trials: 50, seed: 0xED17 ^ seed, ..Default::default() };
        let (dir, store) = fresh_store(&format!("edit-{seed}"));
        let _ = run_campaign_incremental(&sp, &cfg, &store);

        // Candidate edits, in a deterministic order per seed: the
        // halt code (epilogue / final boundary), then immediates of
        // instructions spread over the function incl. the entry block.
        let mut edits: Vec<(usize, i64)> = Vec::new();
        let func = m.entry_fn();
        if let Some(h) = func.insns.iter().position(|i| i.op == Opcode::Halt) {
            edits.push((h, 7));
        }
        let n = func.insns.len();
        for k in 0..4usize {
            let idx = (seed as usize).wrapping_mul(31).wrapping_add(k * 17) % n;
            edits.push((idx, func.insns[idx].imm ^ 1));
        }

        for (round, &(idx, imm)) in edits.iter().enumerate() {
            let mut edited = m.clone();
            edited.entry_fn_mut().insns[idx].imm = imm;
            let esp = sequential(&edited, MachineConfig::itanium2_like(2, 2));
            if !halts(&esp) {
                continue; // the edit broke termination; not a campaign target
            }
            assert_exact(&esp, &cfg, &store, &format!("gen:{seed}:edit{round}@{idx}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The same exactness through the real pipeline: `casted-passes`
/// schedules a random module under two schemes (protected and not),
/// and incremental campaigns on the scheduled programs recombine to
/// the engines' bytes — scheduling, replication and checks included.
#[test]
fn scheduled_random_programs_are_exact() {
    let opts = GenOptions::default();
    let config = MachineConfig::itanium2_like(2, 2);
    for seed in [2u64, 13] {
        let m = random_module(seed, &opts);
        for scheme in [casted_passes::Scheme::Noed, casted_passes::Scheme::Casted] {
            let Ok(prep) = casted_passes::prepare(&m, scheme, &config) else {
                continue;
            };
            if !halts(&prep.sp) {
                continue;
            }
            let cfg = CampaignConfig { trials: 40, seed: 0xCA ^ seed, ..Default::default() };
            let (dir, store) = fresh_store(&format!("passes-{seed}-{}", scheme.name()));
            assert_exact(&prep.sp, &cfg, &store, &format!("gen:{seed}:{}:cold", scheme.name()));
            // Warm: full hit, same bytes.
            let warm = run_campaign_incremental(&prep.sp, &cfg, &store);
            assert_eq!(warm.engine.sections.miss, 0);
            assert_exact(&prep.sp, &cfg, &store, &format!("gen:{seed}:{}:warm", scheme.name()));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
