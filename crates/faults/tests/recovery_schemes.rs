//! Integration tests for the recovery-capable schemes (TMRED, RBED)
//! at the fault-campaign level:
//!
//! * **TMRED corrects** — on a workload where DCED merely *detects*
//!   single-bit strikes, TMRED's majority votes repair them in place:
//!   the campaign reports `Outcome::Corrected` and no detections.
//! * **RBED detects by replay digest** — the code is NOED's schedule
//!   byte for byte, yet every stream-visible corruption NOED would
//!   let through as SDC turns into `Detected` at a chunk boundary.
//! * **Engine invariance** — all three campaign engines (reference,
//!   checkpointed, batched) stay byte-identical for the new schemes
//!   under both the single-bit and burst flip models.
//! * **Zero-fault equivalence** — fault-free TMRED and RBED runs
//!   produce NOED's exact output stream and halt code.

use casted_faults::{
    run_campaign, run_campaign_engine, CampaignConfig, Engine, FlipModel, Outcome,
};
use casted_ir::interp::StopReason;
use casted_ir::vliw::ScheduledProgram;
use casted_ir::{FunctionBuilder, MachineConfig, Module, Opcode, Operand};
use casted_passes::{prepare, Scheme};
use casted_sim::{simulate_quiet, SimOptions};

/// Small arithmetic workload: sums a global table through a loop,
/// prints intermediate accumulators — enough dynamic length for a
/// meaningful campaign and enough dataflow for strikes to matter.
fn workload() -> Module {
    let mut m = Module::new("recovery");
    let (_, addr) = m.add_global(
        "g",
        casted_ir::func::GlobalClass::Int,
        32,
        (1..33).collect(),
    );
    let mut b = FunctionBuilder::new("main");
    let body = b.new_block("body");
    let done = b.new_block("done");
    let acc = b.imm(0);
    let i = b.imm(0);
    b.br(body);
    b.switch_to(body);
    let base = b.imm(addr);
    let sh = b.binop(Opcode::Shl, Operand::Reg(i), Operand::Imm(3));
    let ea = b.binop(Opcode::Add, Operand::Reg(base), Operand::Reg(sh));
    let v = b.load(ea, 0);
    let prod = b.binop(Opcode::Mul, Operand::Reg(v), Operand::Imm(3));
    let acc1 = b.binop(Opcode::Add, Operand::Reg(acc), Operand::Reg(prod));
    b.push(Opcode::MovI, vec![acc], vec![Operand::Reg(acc1)]);
    b.out(Operand::Reg(acc));
    let i1 = b.binop(Opcode::Add, Operand::Reg(i), Operand::Imm(1));
    b.push(Opcode::MovI, vec![i], vec![Operand::Reg(i1)]);
    let p = b.cmp(casted_ir::CmpKind::Lt, Operand::Reg(i), Operand::Imm(32));
    b.br_cond(p, body, done);
    b.switch_to(done);
    b.out(Operand::Reg(acc));
    b.halt_imm(0);
    let id = m.add_function(b.finish());
    m.entry = Some(id);
    m
}

fn prepared(scheme: Scheme) -> ScheduledProgram {
    let cfg = MachineConfig::itanium2_like(2, 2);
    prepare(&workload(), scheme, &cfg).unwrap().sp
}

fn campaign_cfg(scheme: Scheme, trials: usize) -> CampaignConfig {
    CampaignConfig {
        trials,
        seed: 0xCA57ED,
        timeout_factor: 10,
        flip: FlipModel::Single,
        replay_detect: scheme.replay_detect(),
    }
}

#[test]
fn tmred_corrects_where_dced_detects() {
    let dced = run_campaign(&prepared(Scheme::Dced), &campaign_cfg(Scheme::Dced, 120));
    let tmred = run_campaign(&prepared(Scheme::Tmred), &campaign_cfg(Scheme::Tmred, 120));

    // DCED's dup-and-compare only reports strikes.
    assert!(dced.tally.count(Outcome::Detected) > 0, "{:?}", dced.tally);
    assert_eq!(dced.tally.count(Outcome::Corrected), 0);

    // TMRED's majority votes repair them in place: corrections happen,
    // and nothing is ever merely "detected" (there are no detect
    // branches in a TMR binary — a single-lane strike is outvoted).
    assert!(
        tmred.tally.count(Outcome::Corrected) > 0,
        "{:?}",
        tmred.tally
    );
    assert_eq!(tmred.tally.count(Outcome::Detected), 0);
    // Correction is the dominant outcome, standing in for the strikes
    // DCED would merely have reported. TMR's classic residual window —
    // a strike on a vote's *own* output, after the majority was taken
    // — shows up as a small SDC tail; it must stay the minority case.
    assert!(
        tmred.tally.count(Outcome::Corrected) > tmred.tally.count(Outcome::DataCorrupt),
        "correction must dominate the post-vote residue: {:?}",
        tmred.tally
    );
    assert!(
        tmred.tally.count(Outcome::Corrected) * 2 >= dced.tally.count(Outcome::Detected),
        "TMR should repair the bulk of what DCED reports: {:?} vs {:?}",
        tmred.tally,
        dced.tally
    );
}

#[test]
fn rbed_converts_noed_sdc_into_detection() {
    // RBED compiles to NOED's exact schedule, so the two campaigns see
    // the same golden dynamic length and the same frozen injection
    // stream — trials correspond one to one.
    let noed_sp = prepared(Scheme::Noed);
    let rbed_sp = prepared(Scheme::Rbed);
    let noed = run_campaign(&noed_sp, &campaign_cfg(Scheme::Noed, 150));
    let rbed = run_campaign(&rbed_sp, &campaign_cfg(Scheme::Rbed, 150));
    assert_eq!(noed.golden_dyn, rbed.golden_dyn);

    assert!(noed.tally.count(Outcome::DataCorrupt) > 0, "{:?}", noed.tally);
    // Every stream-visible corruption flows through a retired value
    // the digest absorbs, so RBED reports it at a chunk boundary.
    assert_eq!(rbed.tally.count(Outcome::DataCorrupt), 0, "{:?}", rbed.tally);
    assert!(
        rbed.tally.count(Outcome::Detected) >= noed.tally.count(Outcome::DataCorrupt),
        "replay detection must cover at least NOED's SDCs: {:?} vs {:?}",
        rbed.tally,
        noed.tally
    );
    // Dead strikes stay benign: the digest samples computed (pre-flip)
    // values, so a never-consumed flip cannot poison it.
    assert!(rbed.tally.count(Outcome::Benign) > 0, "{:?}", rbed.tally);
}

#[test]
fn three_engines_agree_for_recovery_schemes() {
    for scheme in [Scheme::Tmred, Scheme::Rbed] {
        let sp = prepared(scheme);
        for flip in [FlipModel::Single, FlipModel::Burst2, FlipModel::Burst4] {
            let cfg = CampaignConfig {
                flip,
                ..campaign_cfg(scheme, 60)
            };
            let reference = run_campaign_engine(&sp, &cfg, Engine::Reference);
            for engine in [Engine::Checkpointed, Engine::Batched] {
                let got = run_campaign_engine(&sp, &cfg, engine);
                assert_eq!(
                    reference.tally, got.tally,
                    "{scheme:?}/{flip:?}: {engine:?} diverged from reference"
                );
                assert_eq!(reference.golden_cycles, got.golden_cycles);
                assert_eq!(reference.golden_dyn, got.golden_dyn);
            }
        }
    }
}

#[test]
fn zero_fault_recovery_schemes_match_noed_output() {
    let noed = simulate_quiet(&prepared(Scheme::Noed), &SimOptions::default());
    assert!(matches!(noed.stop, StopReason::Halt(0)));
    for scheme in [Scheme::Tmred, Scheme::Rbed] {
        let r = simulate_quiet(&prepared(scheme), &SimOptions::default());
        assert_eq!(r.stop, noed.stop, "{scheme:?}");
        assert_eq!(r.stream, noed.stream, "{scheme:?} changed the output");
        assert_eq!(r.stats.corrections, 0, "{scheme:?} fault-free run voted a correction");
    }
}
