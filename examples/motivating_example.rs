//! The paper's motivating example (Figs. 2 and 3), as a runnable demo:
//! prints the instruction schedules each scheme produces on 1-wide and
//! 2-wide clusters, and shows the crossover the paper's introduction
//! builds its case on.
//!
//! Run with `cargo run --release --example motivating_example`.

use casted::ir::func::GlobalClass;
use casted::ir::{FunctionBuilder, MachineConfig, Module, Opcode, Operand};
use casted::Scheme;

/// The sample DFG of Fig. 2a/3a: A feeds B and C, which join in D,
/// whose value a (non-replicated) store writes to memory.
fn sample_module() -> Module {
    let mut m = Module::new("motivating");
    let (_, addr) = m.add_global("g", GlobalClass::Int, 4, vec![11, 22, 0, 0]);
    let mut b = FunctionBuilder::new("main");
    let base = b.imm(addr);
    let a = b.load(base, 0);
    let bb = b.binop(Opcode::Mul, Operand::Reg(a), Operand::Imm(3));
    let c = b.binop(Opcode::Add, Operand::Reg(a), Operand::Imm(7));
    let d = b.binop(Opcode::Add, Operand::Reg(bb), Operand::Reg(c));
    b.store(base, 16, Operand::Reg(d));
    let chk = b.load(base, 16);
    b.out(Operand::Reg(chk));
    b.halt_imm(0);
    let id = m.add_function(b.finish());
    m.entry = Some(id);
    m
}

fn main() {
    let m = sample_module();
    for (title, issue) in [("Example 1 (Fig. 2): 1-wide clusters", 1), ("Example 2 (Fig. 3): 2-wide clusters", 2)] {
        println!("======== {title}, inter-core delay 1 ========\n");
        let config = MachineConfig::perfect_memory(issue, 1);
        let mut results = Vec::new();
        for scheme in Scheme::ALL {
            let prep = casted::build(&m, scheme, &config).expect("build");
            let r = casted::measure(&prep);
            println!("--- {}: {} cycles ---", scheme.name(), r.stats.cycles);
            println!("{}", prep.sp.render_block(prep.sp.module.entry_fn().entry));
            results.push((scheme, r.stats.cycles));
        }
        let get = |s: Scheme| results.iter().find(|(x, _)| *x == s).unwrap().1;
        let (sced, dced, casted) = (get(Scheme::Sced), get(Scheme::Dced), get(Scheme::Casted));
        println!(
            "summary: SCED={sced} DCED={dced} CASTED={casted} -> best fixed: {}, CASTED adapts: {}\n",
            if sced <= dced { "SCED" } else { "DCED" },
            if casted <= sced.min(dced) { "yes" } else { "no" },
        );
    }
}
