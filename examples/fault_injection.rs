//! Fault-injection demo: run a Monte-Carlo campaign (paper §IV-C) on
//! one benchmark for all four schemes and print the outcome
//! distribution — a single-benchmark slice of the paper's Fig. 9.
//!
//! Run with `cargo run --release --example fault_injection [benchmark] [trials]`.

use casted::ir::MachineConfig;
use casted::Scheme;
use casted_faults::{run_campaign, CampaignConfig, Outcome};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "h263dec".to_string());
    let trials: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let w = casted_workloads::by_name(&name).expect("unknown benchmark");
    let module = w.compile().expect("compile");
    let config = MachineConfig::itanium2_like(2, 2);

    println!(
        "{trials} single-bit injections per scheme into {name} (issue 2, delay 2)\n"
    );
    println!(
        "{:8} {:>8} {:>9} {:>10} {:>12} {:>8}",
        "scheme", "Benign", "Detected", "Exception", "DataCorrupt", "Timeout"
    );
    for scheme in Scheme::ALL {
        let prep = casted::build(&module, scheme, &config).expect("build");
        let r = run_campaign(
            &prep.sp,
            &CampaignConfig {
                trials,
                ..Default::default()
            },
        );
        println!(
            "{:8} {:>7.1}% {:>8.1}% {:>9.1}% {:>11.1}% {:>7.1}%",
            scheme.name(),
            100.0 * r.tally.fraction(Outcome::Benign),
            100.0 * r.tally.fraction(Outcome::Detected),
            100.0 * r.tally.fraction(Outcome::Exception),
            100.0 * r.tally.fraction(Outcome::DataCorrupt),
            100.0 * r.tally.fraction(Outcome::Timeout),
        );
    }
    println!("\nNote: the residual DataCorrupt of the protected schemes comes from");
    println!("faults striking the inlined (unprotected) library code, as in the paper.");
}
