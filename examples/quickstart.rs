//! Quickstart: compile a MiniC program, protect it with each scheme,
//! measure cycles, and watch the error detection catch an injected
//! transient fault.
//!
//! Run with `cargo run --release --example quickstart`.

use casted::ir::MachineConfig;
use casted::Scheme;
use casted_sim::{simulate, Injection, SimOptions};

const SRC: &str = r#"
global hist: [int; 16];

fn main() -> int {
    var seed: int = 42;
    for i in 0..500 {
        seed = (seed * 1103515245 + 12345) & 9007199254740991;
        var bucket: int = seed % 16;
        hist[bucket] = hist[bucket] + 1;
    }
    var total: int = 0;
    for b in 0..16 {
        out(hist[b]);
        total = total + hist[b];
    }
    out(total);
    return 0;
}
"#;

fn main() {
    // 1. Compile MiniC to IR (GCC's role in the paper).
    let module = casted::compile("quickstart", SRC).expect("compile");

    // 2. A 2-cluster VLIW, 2-wide per cluster, 2-cycle inter-core delay.
    let config = MachineConfig::itanium2_like(2, 2);

    // 3. Build + measure all four schemes.
    println!("{:8} {:>9} {:>9} {:>7} {:>10}", "scheme", "cycles", "slowdown", "growth", "occupancy");
    let mut noed_cycles = 0u64;
    let mut casted_prep = None;
    for scheme in Scheme::ALL {
        let prep = casted::build(&module, scheme, &config).expect("build");
        let r = casted::measure(&prep);
        if scheme == Scheme::Noed {
            noed_cycles = r.stats.cycles;
        }
        println!(
            "{:8} {:>9} {:>8.2}x {:>6.2}x {:>10}",
            scheme.name(),
            r.stats.cycles,
            r.stats.cycles as f64 / noed_cycles as f64,
            prep.ed_stats.map(|s| s.growth()).unwrap_or(1.0),
            format!("{:?}", prep.sp.cluster_occupancy()),
        );
        if scheme == Scheme::Casted {
            casted_prep = Some(prep);
        }
    }

    // 4. Inject one bit flip mid-run into the CASTED binary.
    let prep = casted_prep.unwrap();
    let golden = casted::measure(&prep);
    let faulty = simulate(
        &prep.sp,
        &SimOptions {
            max_cycles: golden.stats.cycles * 10,
            injection: Some(Injection::single(golden.stats.dyn_insns / 3, 7, None)),
            ..SimOptions::default()
        },
    );
    println!("\ninjected a single bit flip 1/3 into the run:");
    println!("  outcome: {:?}", faulty.stop);
    println!(
        "  classification: {}",
        casted_faults::classify(&golden, &faulty)
    );
}
