//! Adaptivity sweep: a miniature of the paper's Fig. 6 for one
//! benchmark — how SCED, DCED and CASTED slowdowns move as the machine
//! configuration changes, and how CASTED's cluster usage adapts.
//!
//! Run with `cargo run --release --example adaptivity_sweep [benchmark]`.

use casted::experiments::{perf_sweep, GridSpec};
use casted::report;
use casted::Scheme;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cjpeg".to_string());
    let w = casted_workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; try one of {:?}",
            casted_workloads::all().iter().map(|w| w.name).collect::<Vec<_>>()));

    let spec = GridSpec {
        issues: vec![1, 2, 3, 4],
        delays: vec![1, 2, 3, 4],
        schemes: Scheme::ALL.to_vec(),
        clusters: vec![2],
    };
    eprintln!("sweeping {name} over issue 1-4 x delay 1-4 ...");
    let table = perf_sweep(&[w], &spec);

    println!("{}", report::perf_panel(&table, &name, &spec.issues, &spec.delays));
    println!("{}", report::scaling_panel(&table, &name, &spec.issues, 2));

    println!("CASTED cluster occupancy (insns on c0/c1) across the grid:");
    for &i in &spec.issues {
        for &d in &spec.delays {
            let p = table.get(&name, Scheme::Casted, i, d).unwrap();
            println!(
                "  issue {i} delay {d}: {:>4} / {:<4}  (split {:.0}%)",
                p.occupancy.first().copied().unwrap_or(0),
                p.occupancy.get(1).copied().unwrap_or(0),
                100.0 * p.occupancy.get(1).copied().unwrap_or(0) as f64
                    / p.occupancy.iter().sum::<usize>().max(1) as f64
            );
        }
    }
}
